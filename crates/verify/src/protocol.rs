//! Static communication-protocol verifier.
//!
//! The paper's any-P distributions fully determine every message the
//! distributed executor will ever send, so the whole rank-to-rank
//! protocol can be derived and proved **before a single socket is
//! opened**. From `(pattern, P, tiles, factorization)` alone this module
//! builds the complete per-rank ordered send/recv schedule — the same
//! [`CommSchedule`] the engine itself runs, cross-checked against the
//! independent Fig. 2 broadcast walk in `flexdist_dist::schedule` — and
//! statically proves three properties:
//!
//! 1. **Matching** — every send is attached to the task that produces
//!    its tile at the right epoch, every receiver of a send has a task
//!    reading the replica, and every remote operand of every task is
//!    delivered exactly once (`send-mismatch`, `stale-epoch`,
//!    `orphan-send`, `duplicate-delivery`, `missing-delivery`).
//! 2. **Deadlock-freedom under bounded buffers** — the engine's
//!    unbounded inboxes ([`flexdist_factor::net::BufferConfig`]) make
//!    "sends never block" true today; this module proves how far that
//!    can be tightened by simulating the schedule under a finite inbox
//!    capacity, reporting any cross-rank wait-for cycle with its full
//!    rank/message witness path (`protocol-deadlock`) and the minimum
//!    capacity at which the schedule is cycle-free. The simulation is a
//!    Kahn-process-network fixpoint: per-capacity, its outcome is
//!    schedule-order independent.
//! 3. **Memory bounds** — replica lifetime analysis under the canonical
//!    linearization (task-id order, a valid topological order) computes
//!    the peak resident replicas/bytes per rank, and declared
//!    `readers_left` refcounts are proved to match the actual reader
//!    counts, so no replica is evicted before its last scheduled read
//!    (`premature-eviction`) or kept forever (`replica-leak`).
//!
//! The loop is closed dynamically by
//! [`check_trace_linearization`]: a real `dexec`/`chaos` net-trace,
//! after retransmit dedup, must be a linearization of the derived
//! schedule — same logical message set, every goodput frame enqueued
//! only after its producing task's span ended.

use crate::Finding;
use flexdist_dist::splice::{cholesky_spliced_broadcasts, lu_spliced_broadcasts, SplicedMsg};
use flexdist_dist::{cholesky_broadcasts, lu_broadcasts, BcastClass, BcastMsg, TileAssignment};
use flexdist_factor::net::{MsgClass, TileKey};
use flexdist_factor::{
    derive_recovery_at, derive_schedule, Operation, RecoverPlan, TaskBcast, TaskList,
};
use flexdist_json::Value;
use std::collections::{HashMap, HashSet, VecDeque};

/// Convert one engine broadcast into the verifier's send spec.
fn spec_of(b: Option<TaskBcast>) -> Option<SendSpec> {
    b.map(|b| SendSpec {
        class: b.class,
        key: TileKey {
            i: b.i,
            j: b.j,
            epoch: b.epoch,
        },
        to: b.receivers,
        recovered: b.recovered,
    })
}

/// One task's broadcast in the verifier's schedule: the tile it ships
/// and the ordered distinct receiver set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendSpec {
    /// Panel or trailing leg.
    pub class: MsgClass,
    /// The broadcast tile and epoch.
    pub key: TileKey,
    /// Distinct receiving ranks in walk order.
    pub to: Vec<u32>,
    /// Parallel to `to`: marks legs that exist only because of a crash
    /// re-map (all-false on a crash-free schedule).
    pub recovered: Vec<bool>,
}

/// The symbolically derived per-rank protocol: every send, every remote
/// operand, every replica refcount — plus mutation hooks so tests can
/// prove each analysis actually bites.
#[derive(Debug, Clone)]
pub struct ProtocolSchedule {
    /// Tiles per matrix side.
    pub t: usize,
    /// Rank count.
    pub n_ranks: u32,
    /// Executing rank of each task.
    pub rank_of: Vec<u32>,
    /// Tile each task writes.
    pub writes: Vec<(u32, u32)>,
    /// Iteration each task belongs to.
    pub epochs: Vec<u32>,
    /// Remote operands each task waits for.
    pub needs: Vec<Vec<TileKey>>,
    /// Broadcast each task performs on completion.
    pub sends: Vec<Option<SendSpec>>,
    /// Per rank: its task ids in program order (task-id order, a valid
    /// topological order of the DAG restricted to the rank).
    pub local_order: Vec<Vec<usize>>,
    /// Per rank: the `readers_left` refcount the engine seeds for each
    /// remote replica (evicted when it reaches zero).
    pub readers: Vec<HashMap<TileKey, u32>>,
    /// Per rank: owned tiles (resident for the whole run).
    pub owned: Vec<u64>,
    /// Verifier position → engine task id. Identity for a crash-free
    /// schedule; on a crashed schedule ([`Self::derive_crashed`]) the
    /// dead rank's pre-crash tasks are *appended* after the fused
    /// survivor view, so two positions can map to the same engine task
    /// (the casualty ran it pre-crash, its heir re-runs it).
    pub engine_task: Vec<usize>,
}

impl ProtocolSchedule {
    /// Derive the schedule for a task list over an owner map — the
    /// exact structure [`flexdist_factor::execute_distributed`] runs.
    ///
    /// # Errors
    /// A message for operations without a broadcast schedule (only LU
    /// and Cholesky have one).
    pub fn derive(tl: &TaskList, a: &TileAssignment) -> Result<Self, String> {
        let cs = derive_schedule(tl, a).map_err(|e| e.to_string())?;
        let n_ranks = cs.n_ranks;
        let n = cs.node.len();
        let mut local_order: Vec<Vec<usize>> = vec![Vec::new(); n_ranks as usize];
        let mut readers: Vec<HashMap<TileKey, u32>> = vec![HashMap::new(); n_ranks as usize];
        for (id, &rank) in cs.node.iter().enumerate() {
            local_order[rank as usize].push(id);
            for &key in &cs.needs[id] {
                *readers[rank as usize].entry(key).or_insert(0) += 1;
            }
        }
        let mut owned = vec![0u64; n_ranks as usize];
        for i in 0..cs.t {
            for j in 0..cs.t {
                owned[a.owner(i, j) as usize] += 1;
            }
        }
        let sends = cs.bcast.into_iter().map(spec_of).collect();
        debug_assert_eq!(n, cs.needs.len());
        Ok(Self {
            t: cs.t,
            n_ranks,
            rank_of: cs.node,
            writes: cs.writes,
            epochs: cs.epochs,
            needs: cs.needs,
            sends,
            local_order,
            readers,
            owned,
            engine_task: (0..n).collect(),
        })
    }

    /// Derive the **crashed** schedule for a run where rank `dead` dies
    /// at iteration `epoch` and the survivors recover: the fused
    /// survivor view (task placement and needs under the P→P−1 re-map,
    /// broadcasts spliced across the crash point) at positions `0..n`,
    /// with the casualty's surviving pre-crash tasks appended after it.
    /// This is exactly the union of the two [`CommSchedule`]s a
    /// recovering run executes, so everything [`check_schedule`] proves
    /// about it — matching, deadlock-freedom, eviction safety — holds
    /// for the live recovered run. A crash point past the dead rank's
    /// last task degenerates to the plain schedule ([`Self::derive`]).
    ///
    /// # Errors
    /// A message for operations without a broadcast schedule, or for an
    /// unrecoverable crash configuration (no survivor).
    pub fn derive_crashed(
        tl: &TaskList,
        a: &TileAssignment,
        dead: u32,
        epoch: u32,
    ) -> Result<Self, String> {
        let rp = derive_recovery_at(tl, a, dead, epoch).map_err(|e| e.to_string())?;
        if !rp.active {
            return Self::derive(tl, a);
        }
        Ok(Self::of_recovery(rp, a))
    }

    /// Build the combined crashed schedule from an already-derived
    /// (active) recovery plan.
    fn of_recovery(rp: RecoverPlan, a: &TileAssignment) -> Self {
        let dead = rp.dead;
        let sv = rp.survivor;
        let ds = rp.dead_sched;
        let a2 = rp.remapped;
        let n_ranks = sv.n_ranks;
        let n = sv.node.len();
        let mut rank_of = sv.node.clone();
        let mut writes = sv.writes.clone();
        let mut epochs = sv.epochs.clone();
        let mut needs = sv.needs.clone();
        let mut sends: Vec<Option<SendSpec>> = sv.bcast.into_iter().map(spec_of).collect();
        let mut engine_task: Vec<usize> = (0..n).collect();
        for id in 0..n {
            debug_assert_ne!(
                sv.node[id], dead,
                "the re-map leaves the dead rank without tasks"
            );
            if ds.node[id] != dead {
                continue;
            }
            rank_of.push(dead);
            writes.push(ds.writes[id]);
            epochs.push(ds.epochs[id]);
            needs.push(ds.needs[id].clone());
            sends.push(spec_of(ds.bcast[id].clone()));
            engine_task.push(id);
        }
        let mut local_order: Vec<Vec<usize>> = vec![Vec::new(); n_ranks as usize];
        let mut readers: Vec<HashMap<TileKey, u32>> = vec![HashMap::new(); n_ranks as usize];
        for (pos, &rank) in rank_of.iter().enumerate() {
            local_order[rank as usize].push(pos);
            for &key in &needs[pos] {
                *readers[rank as usize].entry(key).or_insert(0) += 1;
            }
        }
        let mut owned = vec![0u64; n_ranks as usize];
        for i in 0..sv.t {
            for j in 0..sv.t {
                // Survivors hold their re-mapped working set; the
                // casualty holds its original tiles until it dies.
                owned[a2.owner(i, j) as usize] += 1;
                if a.owner(i, j) == dead {
                    owned[dead as usize] += 1;
                }
            }
        }
        Self {
            t: sv.t,
            n_ranks,
            rank_of,
            writes,
            epochs,
            needs,
            sends,
            local_order,
            readers,
            owned,
            engine_task,
        }
    }

    /// Total logical deliveries (tile → distinct receiver pairs); equals
    /// `lu_comm_volume` / `cholesky_comm_volume` totals by construction.
    #[must_use]
    pub fn n_deliveries(&self) -> u64 {
        self.sends.iter().flatten().map(|s| s.to.len() as u64).sum()
    }

    /// Mutation: delete the `pick`-th broadcast entirely (a sender that
    /// forgets to ship its tile). Returns the task whose send was
    /// removed, or `None` when the schedule has no sends.
    pub fn drop_send(&mut self, pick: usize) -> Option<usize> {
        let tasks: Vec<usize> = (0..self.sends.len())
            .filter(|&id| self.sends[id].is_some())
            .collect();
        let &task = tasks.get(pick % tasks.len().max(1))?;
        self.sends[task] = None;
        Some(task)
    }

    /// Mutation: delete the recovery-only legs (the `recovered = true`
    /// receivers) of the `pick`-th broadcast that carries any — an heir
    /// that forgets its re-serve duty after adopting the dead rank's
    /// tiles. Returns the mutated position and the dropped receivers,
    /// or `None` when the schedule has no recovered sends (i.e. it is
    /// crash-free or the recovery was inactive).
    pub fn drop_recovery_send(&mut self, pick: usize) -> Option<(usize, Vec<u32>)> {
        let tasks: Vec<usize> = (0..self.sends.len())
            .filter(|&id| {
                self.sends[id]
                    .as_ref()
                    .is_some_and(|s| s.recovered.iter().any(|&f| f))
            })
            .collect();
        let &task = tasks.get(pick % tasks.len().max(1))?;
        let send = self.sends[task].as_mut()?;
        let mut dropped = Vec::new();
        let mut keep = Vec::new();
        for (k, &to) in send.to.iter().enumerate() {
            if send.recovered[k] {
                dropped.push(to);
            } else {
                keep.push(to);
            }
        }
        send.recovered = vec![false; keep.len()];
        send.to = keep;
        if send.to.is_empty() {
            self.sends[task] = None;
        }
        Some((task, dropped))
    }

    /// Mutation: swap the broadcasts of two consecutive sending tasks on
    /// one rank (a reordered send queue — each message now leaves with
    /// the wrong producing task). Returns the swapped task pair, or
    /// `None` when no rank has two sends of distinct tiles.
    pub fn swap_sends(&mut self, pick: usize) -> Option<(usize, usize)> {
        let mut pairs = Vec::new();
        for order in &self.local_order {
            let senders: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&id| self.sends[id].is_some())
                .collect();
            for w in senders.windows(2) {
                let (u, v) = (w[0], w[1]);
                let ku = self.sends[u].as_ref().map(|s| s.key);
                let kv = self.sends[v].as_ref().map(|s| s.key);
                if ku != kv {
                    pairs.push((u, v));
                }
            }
        }
        let &(u, v) = pairs.get(pick % pairs.len().max(1))?;
        self.sends.swap(u, v);
        Some((u, v))
    }

    /// Mutation: decrement one replica's declared `readers_left` (the
    /// engine would evict the payload one read too early). Returns the
    /// mutated `(rank, key)`, or `None` when no rank holds replicas.
    pub fn evict_early(&mut self, pick: usize) -> Option<(u32, TileKey)> {
        let mut slots: Vec<(u32, TileKey)> = Vec::new();
        for (r, m) in self.readers.iter().enumerate() {
            for (&key, &left) in m {
                if left > 0 {
                    slots.push((r as u32, key));
                }
            }
        }
        slots.sort_by_key(|&(r, k)| (r, k.epoch, k.i, k.j));
        let &(r, key) = slots.get(pick % slots.len().max(1))?;
        if let Some(left) = self.readers[r as usize].get_mut(&key) {
            *left -= 1;
        }
        Some((r, key))
    }
}

/// Per-rank result of the replica lifetime analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankPeak {
    /// Rank id.
    pub rank: u32,
    /// Tasks the rank executes.
    pub tasks: u64,
    /// Broadcasts it originates.
    pub sends: u64,
    /// Tiles it owns (resident for the whole run).
    pub owned: u64,
    /// Distinct remote replicas it ever holds.
    pub replicas: u64,
    /// Peak simultaneously resident replicas under the canonical
    /// linearization (arrivals counted before frees at each boundary,
    /// so this is also an upper bound for the engine's eager receive).
    pub peak_replicas: u64,
}

impl RankPeak {
    /// Peak resident bytes for tiles of `nb × nb` doubles: owned tiles
    /// plus peak replicas.
    #[must_use]
    pub fn peak_bytes(&self, nb: usize) -> u64 {
        (self.owned + self.peak_replicas) * 8 * (nb as u64) * (nb as u64)
    }
}

/// Everything the static protocol analysis proves (or refutes).
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// All findings, matching first, then eviction, then deadlock.
    pub findings: Vec<Finding>,
    /// Rank count.
    pub n_ranks: u32,
    /// Tasks in the schedule.
    pub n_tasks: usize,
    /// Logical broadcasts (sends).
    pub n_sends: u64,
    /// Logical deliveries (tile → receiver pairs); equals the analytic
    /// comm volume when the schedule is unmutated.
    pub n_deliveries: u64,
    /// Minimum inbox capacity (frames) at which the schedule completes
    /// without a wait-for cycle; `Some(0)` when nothing is sent, `None`
    /// when matching findings made the simulation meaningless.
    pub min_capacity: Option<u32>,
    /// The explicit capacity that was simulated, when one was given.
    pub capacity_checked: Option<u32>,
    /// Per-rank memory bounds.
    pub peaks: Vec<RankPeak>,
}

impl ProtocolReport {
    /// No findings of any rule.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Largest per-rank peak (tiles including owned), for one-line
    /// summaries.
    #[must_use]
    pub fn max_peak(&self) -> Option<&RankPeak> {
        self.peaks
            .iter()
            .max_by_key(|p| (p.owned + p.peak_replicas, p.rank))
    }

    /// Render the summary and all findings, one per line.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cap = match self.min_capacity {
            Some(c) => format!("min safe inbox capacity {c} frame(s)"),
            None => "min safe inbox capacity not computed (matching failed)".to_string(),
        };
        let _ = writeln!(
            out,
            "protocol: {} rank(s), {} task(s), {} send(s) / {} deliveries, {cap}, {} finding(s)",
            self.n_ranks,
            self.n_tasks,
            self.n_sends,
            self.n_deliveries,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = writeln!(out, "  {f}");
        }
        out
    }

    /// Per-rank peak-memory table for tiles of `nb × nb` doubles.
    #[must_use]
    pub fn peak_table(&self, nb: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  rank   tasks   sends   owned   replicas   peak tiles   peak bytes (nb={nb})"
        );
        for p in &self.peaks {
            let _ = writeln!(
                out,
                "  {:>4}  {:>6}  {:>6}  {:>6}  {:>9}  {:>11}  {:>10} B",
                p.rank,
                p.tasks,
                p.sends,
                p.owned,
                p.replicas,
                p.owned + p.peak_replicas,
                p.peak_bytes(nb)
            );
        }
        out
    }
}

/// Derive and fully check the protocol of a task list over an owner
/// map: cross-derivation agreement with the `flexdist_dist` broadcast
/// walk, matching, eviction safety, deadlock-freedom and the minimum
/// safe buffer capacity (plus, when `capacity` is given, a deadlock
/// check at exactly that capacity).
///
/// # Errors
/// A message for operations without a broadcast schedule.
pub fn check_protocol(
    tl: &TaskList,
    a: &TileAssignment,
    capacity: Option<u32>,
) -> Result<ProtocolReport, String> {
    let s = ProtocolSchedule::derive(tl, a)?;
    let mut walk = walk_findings(&s, tl.operation, a);
    let mut rep = check_schedule(&s, capacity);
    walk.append(&mut rep.findings);
    rep.findings = walk;
    Ok(rep)
}

/// Derive and fully check the **crashed** protocol: the combined
/// schedule of a run where rank `dead` dies at the start of iteration
/// `epoch` and the survivors recover under the P→P−1 re-map
/// ([`ProtocolSchedule::derive_crashed`]). The combined send multiset is
/// cross-checked against the independent spliced broadcast walk in
/// `flexdist_dist::splice`, then matching, eviction safety,
/// deadlock-freedom and the memory bounds are proved exactly as
/// [`check_protocol`] does — so a clean report means the spliced
/// schedule delivers every operand exactly once and completes under
/// bounded buffers. An inactive crash point (the casualty has no work
/// left at `epoch`) degenerates to the plain [`check_protocol`].
///
/// # Errors
/// A message for operations without a broadcast schedule, or for an
/// unrecoverable crash configuration (double crash, no survivor).
pub fn check_protocol_crashed(
    tl: &TaskList,
    a: &TileAssignment,
    dead: u32,
    epoch: u32,
    capacity: Option<u32>,
) -> Result<ProtocolReport, String> {
    let rp = derive_recovery_at(tl, a, dead, epoch).map_err(|e| e.to_string())?;
    if !rp.active {
        return check_protocol(tl, a, capacity);
    }
    let a2 = rp.remapped.clone();
    let s = ProtocolSchedule::of_recovery(rp, a);
    let mut walk = spliced_walk_findings(&s, tl.operation, a, &a2, dead, epoch);
    let mut rep = check_schedule(&s, capacity);
    walk.append(&mut rep.findings);
    rep.findings = walk;
    Ok(rep)
}

/// Check a (possibly mutated) schedule: matching, eviction safety, the
/// bounded-buffer deadlock analysis and the per-rank memory bounds.
/// `capacity` additionally simulates that exact inbox depth and reports
/// any wait-for cycle at it.
#[must_use]
pub fn check_schedule(s: &ProtocolSchedule, capacity: Option<u32>) -> ProtocolReport {
    let mut findings = Vec::new();

    // Delivery and reader indices.
    let mut deliver: HashMap<(u32, TileKey), Vec<usize>> = HashMap::new();
    for (task, send) in s.sends.iter().enumerate() {
        let Some(send) = send else { continue };
        for &to in &send.to {
            deliver.entry((to, send.key)).or_default().push(task);
        }
    }
    let mut readers_idx: HashMap<(u32, TileKey), Vec<usize>> = HashMap::new();
    for (task, needs) in s.needs.iter().enumerate() {
        for &key in needs {
            readers_idx
                .entry((s.rank_of[task], key))
                .or_default()
                .push(task);
        }
    }

    matching_findings(s, &deliver, &readers_idx, &mut findings);
    let matching_clean = findings.is_empty();
    eviction_findings(s, &readers_idx, &mut findings);

    // Deadlock analysis is only meaningful on a schedule whose message
    // set matches — a dropped send would stall the simulation for a
    // reason the matching findings already explain.
    let mut min_capacity = None;
    if matching_clean {
        let mut inbound = vec![0u64; s.n_ranks as usize];
        for ((to, _), senders) in &deliver {
            inbound[*to as usize] += senders.len() as u64;
        }
        let max_in = inbound.iter().copied().max().unwrap_or(0);
        if max_in == 0 {
            min_capacity = Some(0);
        } else {
            let hi = u32::try_from(max_in).unwrap_or(u32::MAX);
            if let Some(f) = simulate(s, hi, &deliver) {
                findings.push(Finding {
                    rule: "protocol-stuck",
                    message: format!(
                        "schedule does not complete even with capacity {hi}: {}",
                        f.message
                    ),
                });
            } else {
                // Success is monotone in capacity (KPN monotonicity:
                // more inbox space never disables a send), so binary
                // search finds the exact threshold.
                let (mut lo, mut hi) = (1u32, hi);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if simulate(s, mid, &deliver).is_none() {
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
                min_capacity = Some(lo);
            }
        }
        if let Some(cap) = capacity {
            if let Some(f) = simulate(s, cap.max(1), &deliver) {
                findings.push(f);
            }
        }
    }

    let peaks = memory_peaks(s, &deliver, &readers_idx);
    ProtocolReport {
        findings,
        n_ranks: s.n_ranks,
        n_tasks: s.rank_of.len(),
        n_sends: s.sends.iter().flatten().count() as u64,
        n_deliveries: s.n_deliveries(),
        min_capacity,
        capacity_checked: capacity,
        peaks,
    }
}

fn key_str(k: TileKey) -> String {
    format!("tile ({},{})@{}", k.i, k.j, k.epoch)
}

/// Send/recv matching: producer attachment, epoch sanity, orphan sends,
/// duplicate and missing deliveries.
fn matching_findings(
    s: &ProtocolSchedule,
    deliver: &HashMap<(u32, TileKey), Vec<usize>>,
    readers_idx: &HashMap<(u32, TileKey), Vec<usize>>,
    findings: &mut Vec<Finding>,
) {
    for (task, send) in s.sends.iter().enumerate() {
        let Some(send) = send else { continue };
        let (wi, wj) = s.writes[task];
        if (send.key.i, send.key.j) != (wi, wj) || send.key.epoch != s.epochs[task] {
            findings.push(Finding {
                rule: "send-mismatch",
                message: format!(
                    "task {task} on rank {} broadcasts {} but writes tile ({wi},{wj}) at epoch {}",
                    s.rank_of[task],
                    key_str(send.key),
                    s.epochs[task]
                ),
            });
        }
        if send.key.epoch != TileKey::expected_epoch(send.key.i, send.key.j) {
            findings.push(Finding {
                rule: "stale-epoch",
                message: format!(
                    "task {task} broadcasts {} but the tile's final value ships at epoch {}",
                    key_str(send.key),
                    TileKey::expected_epoch(send.key.i, send.key.j)
                ),
            });
        }
        let me = s.rank_of[task];
        let mut seen = HashSet::new();
        for &to in &send.to {
            if to == me || to >= s.n_ranks || !seen.insert(to) {
                findings.push(Finding {
                    rule: "send-mismatch",
                    message: format!(
                        "task {task} on rank {me} has an invalid receiver {to} for {}",
                        key_str(send.key)
                    ),
                });
            }
        }
    }
    for (task, needs) in s.needs.iter().enumerate() {
        for &key in needs {
            if key.epoch != TileKey::expected_epoch(key.i, key.j) {
                findings.push(Finding {
                    rule: "stale-epoch",
                    message: format!(
                        "task {task} on rank {} reads {} of a stale epoch (expected {})",
                        s.rank_of[task],
                        key_str(key),
                        TileKey::expected_epoch(key.i, key.j)
                    ),
                });
            }
        }
    }
    let mut dup: Vec<_> = deliver.iter().filter(|(_, v)| v.len() > 1).collect();
    dup.sort_by_key(|((to, k), _)| (*to, k.epoch, k.i, k.j));
    for ((to, key), senders) in dup {
        findings.push(Finding {
            rule: "duplicate-delivery",
            message: format!(
                "{} is scheduled to reach rank {to} from {} tasks {senders:?}",
                key_str(*key),
                senders.len()
            ),
        });
    }
    let mut orphans: Vec<_> = deliver
        .keys()
        .filter(|slot| !readers_idx.contains_key(slot))
        .collect();
    orphans.sort_by_key(|(to, k)| (*to, k.epoch, k.i, k.j));
    for &(to, key) in orphans {
        findings.push(Finding {
            rule: "orphan-send",
            message: format!(
                "{} is sent to rank {to}, which has no task reading it",
                key_str(key)
            ),
        });
    }
    let mut missing: Vec<_> = readers_idx
        .iter()
        .filter(|(slot, _)| !deliver.contains_key(slot))
        .collect();
    missing.sort_by_key(|((to, k), _)| (*to, k.epoch, k.i, k.j));
    for ((rank, key), tasks) in missing {
        findings.push(Finding {
            rule: "missing-delivery",
            message: format!(
                "rank {rank} task(s) {tasks:?} read {} but no send delivers it",
                key_str(*key)
            ),
        });
    }
}

/// Eviction safety: each declared `readers_left` refcount must equal the
/// number of scheduled readers — fewer means the payload dies before its
/// last read, more means it is never evicted.
fn eviction_findings(
    s: &ProtocolSchedule,
    readers_idx: &HashMap<(u32, TileKey), Vec<usize>>,
    findings: &mut Vec<Finding>,
) {
    for rank in 0..s.n_ranks {
        let declared = &s.readers[rank as usize];
        let mut keys: Vec<_> = declared.keys().copied().collect();
        keys.sort_by_key(|k| (k.epoch, k.i, k.j));
        for key in keys {
            let d = declared[&key];
            let actual = readers_idx.get(&(rank, key)).map_or(0, |t| t.len() as u32);
            if d < actual {
                findings.push(Finding {
                    rule: "premature-eviction",
                    message: format!(
                        "rank {rank} evicts {} after {d} read(s) but schedules {actual} reader(s)",
                        key_str(key)
                    ),
                });
            } else if d > actual {
                findings.push(Finding {
                    rule: "replica-leak",
                    message: format!(
                        "rank {rank} declares {d} reader(s) of {} but schedules only {actual} — \
                         the replica is never evicted",
                        key_str(key)
                    ),
                });
            }
        }
        let mut unseeded: Vec<_> = readers_idx
            .keys()
            .filter(|(r, k)| *r == rank && !declared.contains_key(k))
            .collect();
        unseeded.sort_by_key(|(_, k)| (k.epoch, k.i, k.j));
        for &(_, key) in unseeded {
            findings.push(Finding {
                rule: "replica-leak",
                message: format!(
                    "rank {rank} reads {} but seeds no readers_left refcount — \
                     the replica is never evicted",
                    key_str(key)
                ),
            });
        }
    }
}

/// One step of a rank's canonical program: execute a task (gated on its
/// remote operands) or push one broadcast frame to a peer's inbox.
enum Action {
    Exec(usize),
    Send { to: u32, key: TileKey },
}

/// Simulate the schedule under per-rank inboxes of `cap` frames.
///
/// Semantics mirror the engine with a bounded transport substituted: a
/// rank advances through its program order; at a task whose remote
/// operands are missing it drains its whole inbox (the blocked-on-recv
/// loop), a send blocks while the receiver's inbox is full, and a
/// finished rank keeps draining (`finish_and_drain`). A rank that is
/// blocked **sending** does not drain — that is exactly what closes
/// wait-for cycles. The fire-everything-enabled fixpoint makes the
/// outcome independent of rank interleaving (Kahn network monotonicity).
///
/// Returns `None` when every rank finishes, or a `protocol-deadlock`
/// finding carrying the wait-for cycle witness.
fn simulate(
    s: &ProtocolSchedule,
    cap: u32,
    deliver: &HashMap<(u32, TileKey), Vec<usize>>,
) -> Option<Finding> {
    let n = s.n_ranks as usize;
    let mut actions: Vec<Vec<Action>> = Vec::with_capacity(n);
    for order in &s.local_order {
        let mut list = Vec::new();
        for &task in order {
            list.push(Action::Exec(task));
            if let Some(send) = &s.sends[task] {
                for &to in &send.to {
                    list.push(Action::Send { to, key: send.key });
                }
            }
        }
        actions.push(list);
    }
    let mut pc = vec![0usize; n];
    let mut have: Vec<HashSet<TileKey>> = vec![HashSet::new(); n];
    let mut inbox: Vec<VecDeque<TileKey>> = vec![VecDeque::new(); n];
    loop {
        let mut progressed = false;
        for r in 0..n {
            loop {
                if pc[r] == actions[r].len() {
                    if !inbox[r].is_empty() {
                        while let Some(k) = inbox[r].pop_front() {
                            have[r].insert(k);
                        }
                        progressed = true;
                    }
                    break;
                }
                match actions[r][pc[r]] {
                    Action::Exec(task) => {
                        if s.needs[task].iter().all(|k| have[r].contains(k)) {
                            pc[r] += 1;
                            progressed = true;
                            continue;
                        }
                        if !inbox[r].is_empty() {
                            while let Some(k) = inbox[r].pop_front() {
                                have[r].insert(k);
                            }
                            progressed = true;
                            continue;
                        }
                        break;
                    }
                    Action::Send { to, key } => {
                        let to = to as usize;
                        if (inbox[to].len() as u32) < cap {
                            inbox[to].push_back(key);
                            pc[r] += 1;
                            progressed = true;
                            continue;
                        }
                        break;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    let blocked: Vec<usize> = (0..n).filter(|&r| pc[r] < actions[r].len()).collect();
    if blocked.is_empty() {
        return None;
    }
    // Every blocked rank waits on exactly identifiable peers; follow the
    // first wait edge from the lowest blocked rank until a rank repeats
    // — with clean matching, the walk must close a cycle.
    let edge = |r: usize| -> Option<(usize, String)> {
        match &actions[r][pc[r]] {
            Action::Send { to, key } => Some((
                *to as usize,
                format!(
                    "blocked sending {} to rank {to} (inbox full at {cap})",
                    key_str(*key)
                ),
            )),
            Action::Exec(task) => {
                for key in &s.needs[*task] {
                    if have[r].contains(key) {
                        continue;
                    }
                    if let Some(senders) = deliver.get(&(r as u32, *key)) {
                        let from = s.rank_of[senders[0]] as usize;
                        return Some((
                            from,
                            format!("task {task} waiting for {} from rank {from}", key_str(*key)),
                        ));
                    }
                }
                None
            }
        }
    };
    let start = blocked[0];
    let mut path: Vec<(usize, String)> = Vec::new();
    let mut pos: HashMap<usize, usize> = HashMap::new();
    let mut cur = start;
    let cycle = loop {
        if let Some(&k) = pos.get(&cur) {
            break Some(k);
        }
        let Some((next, why)) = edge(cur) else {
            break None;
        };
        pos.insert(cur, path.len());
        path.push((cur, why));
        cur = next;
    };
    let message = match cycle {
        Some(k) => {
            use std::fmt::Write as _;
            let mut msg = format!("capacity {cap}: wait-for cycle ");
            for (r, why) in &path[k..] {
                let _ = write!(msg, "[rank {r}: {why}] -> ");
            }
            let _ = write!(msg, "rank {cur}");
            msg
        }
        None => {
            format!("capacity {cap}: ranks {blocked:?} are blocked with no identifiable sender")
        }
    };
    Some(Finding {
        rule: "protocol-deadlock",
        message,
    })
}

/// Replica lifetime analysis: peak simultaneously resident replicas per
/// rank under the canonical linearization (global task-id order).
fn memory_peaks(
    s: &ProtocolSchedule,
    deliver: &HashMap<(u32, TileKey), Vec<usize>>,
    readers_idx: &HashMap<(u32, TileKey), Vec<usize>>,
) -> Vec<RankPeak> {
    let mut out = Vec::with_capacity(s.n_ranks as usize);
    for rank in 0..s.n_ranks {
        // One interval per replica: from the producing task's position
        // (arrival cannot precede the send) to its last local reader.
        let mut intervals: Vec<(usize, usize)> = Vec::new();
        for ((r, key), tasks) in readers_idx {
            if *r != rank {
                continue;
            }
            let Some(senders) = deliver.get(&(rank, *key)) else {
                continue;
            };
            let start = senders.iter().copied().min().unwrap_or(0);
            let end = tasks.iter().copied().max().unwrap_or(start);
            intervals.push((start, end.max(start)));
        }
        // Sweep; at equal positions arrivals count before frees, making
        // the peak an upper bound for any receive timing.
        let mut events: Vec<(usize, i64)> = Vec::with_capacity(intervals.len() * 2);
        for &(a, b) in &intervals {
            events.push((a, 1));
            events.push((b + 1, -1));
        }
        events.sort_by_key(|&(pos, delta)| (pos, -delta));
        let (mut cur, mut peak) = (0i64, 0i64);
        for (_, delta) in events {
            cur += delta;
            peak = peak.max(cur);
        }
        let sends = s.local_order[rank as usize]
            .iter()
            .filter(|&&id| s.sends[id].is_some())
            .count() as u64;
        out.push(RankPeak {
            rank,
            tasks: s.local_order[rank as usize].len() as u64,
            sends,
            owned: s.owned[rank as usize],
            replicas: intervals.len() as u64,
            peak_replicas: peak.max(0) as u64,
        });
    }
    out
}

/// Cross-derivation agreement: the schedule extracted from the task list
/// must carry exactly the message multiset of the independent Fig. 2
/// broadcast walk in `flexdist_dist::schedule` — same tiles, epochs,
/// senders and ordered receiver sets.
/// A broadcast's identity for the multiset diff: class discriminant,
/// sender, tile, epoch, ordered receiver set.
type WalkKey = (u8, u32, u32, u32, u32, Vec<u32>);

fn walk_findings(s: &ProtocolSchedule, op: Operation, a: &TileAssignment) -> Vec<Finding> {
    let mut counts: HashMap<WalkKey, i64> = HashMap::new();
    let keyed = |m: &BcastMsg| {
        (
            match m.class {
                BcastClass::Panel => 0u8,
                BcastClass::Trailing => 1,
            },
            m.sender,
            m.i as u32,
            m.j as u32,
            m.epoch as u32,
            m.receivers.clone(),
        )
    };
    match op {
        Operation::Lu => {
            for m in lu_broadcasts(a) {
                *counts.entry(keyed(&m)).or_insert(0) += 1;
            }
        }
        Operation::Cholesky => {
            for m in cholesky_broadcasts(a) {
                *counts.entry(keyed(&m)).or_insert(0) += 1;
            }
        }
        _ => return Vec::new(),
    }
    subtract_sends(&mut counts, s);
    walk_diff_findings(counts, "dist walk")
}

/// Cross-derivation agreement for a **crashed** schedule: the combined
/// survivor + casualty send multiset must equal the independent spliced
/// broadcast walk in `flexdist_dist::splice` — the closed-form fusion of
/// the pre-crash walk under `a` and the post-crash walk under `a2`.
fn spliced_walk_findings(
    s: &ProtocolSchedule,
    op: Operation,
    a: &TileAssignment,
    a2: &TileAssignment,
    dead: u32,
    epoch: u32,
) -> Vec<Finding> {
    let keyed = |m: &SplicedMsg| {
        (
            match m.class {
                BcastClass::Panel => 0u8,
                BcastClass::Trailing => 1,
            },
            m.sender,
            m.i as u32,
            m.j as u32,
            m.epoch as u32,
            m.receivers.clone(),
        )
    };
    let stream = match op {
        Operation::Lu => lu_spliced_broadcasts(a, a2, dead, epoch as usize),
        Operation::Cholesky => cholesky_spliced_broadcasts(a, a2, dead, epoch as usize),
        _ => return Vec::new(),
    };
    let mut counts: HashMap<WalkKey, i64> = HashMap::new();
    for m in &stream {
        *counts.entry(keyed(m)).or_insert(0) += 1;
    }
    subtract_sends(&mut counts, s);
    walk_diff_findings(counts, "spliced walk")
}

/// Subtract every scheduled broadcast from the walk multiset.
fn subtract_sends(counts: &mut HashMap<WalkKey, i64>, s: &ProtocolSchedule) {
    for (task, send) in s.sends.iter().enumerate() {
        let Some(send) = send else { continue };
        let class = match send.class {
            MsgClass::Panel => 0u8,
            MsgClass::Trailing => 1,
        };
        *counts
            .entry((
                class,
                s.rank_of[task],
                send.key.i,
                send.key.j,
                send.key.epoch,
                send.to.clone(),
            ))
            .or_insert(0) -= 1;
    }
}

/// Render the non-zero multiset differences, capped at eight findings.
fn walk_diff_findings(counts: HashMap<WalkKey, i64>, what: &str) -> Vec<Finding> {
    let mut diffs: Vec<_> = counts.into_iter().filter(|(_, c)| *c != 0).collect();
    diffs.sort_by(|a, b| a.0.cmp(&b.0));
    diffs
        .into_iter()
        .take(8)
        .map(|((class, sender, i, j, epoch, to), c)| Finding {
            rule: "walk-divergence",
            message: format!(
                "{} broadcast of tile ({i},{j})@{epoch} from rank {sender} to {to:?} appears {} \
                 time(s) in the {what} minus the task schedule",
                if class == 0 { "panel" } else { "trailing" },
                c
            ),
        })
        .collect()
}

/// Outcome of checking a live net-trace against the derived schedule.
#[derive(Debug, Clone)]
pub struct TraceCheck {
    /// Findings: messages missing from the trace, unscheduled messages,
    /// and goodput frames enqueued before their producer finished.
    pub findings: Vec<Finding>,
    /// Deduplicated goodput messages in the trace.
    pub n_goodput: u64,
    /// Logical deliveries the schedule predicts.
    pub n_scheduled: u64,
    /// Overhead frames (drops, corrupt, duplicates) skipped by dedup.
    pub n_overhead: u64,
}

impl TraceCheck {
    /// No findings of any rule.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render the summary and all findings, one per line.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "protocol-trace: {} goodput frame(s) vs {} scheduled deliveries, {} overhead, \
             {} finding(s)",
            self.n_goodput,
            self.n_scheduled,
            self.n_overhead,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = writeln!(out, "  {f}");
        }
        out
    }
}

/// Check that a real `net-trace` is a linearization of the derived
/// schedule: after retransmit dedup, the goodput message set equals the
/// scheduled delivery set exactly, and every goodput frame was enqueued
/// no earlier than the end of the span of the task that produces its
/// tile (sender-side causality — the trace file sorts its arrays, so
/// order is checked through timestamps, not positions).
///
/// # Errors
/// A message when the document is not a `net-trace` or a message entry
/// is malformed.
pub fn check_trace_linearization(s: &ProtocolSchedule, doc: &Value) -> Result<TraceCheck, String> {
    if doc.get("kind").and_then(Value::as_str) != Some("net-trace") {
        return Err("protocol --trace expects a net-trace document".into());
    }
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .ok_or("net-trace: missing array field \"spans\"")?;
    let mut findings = Vec::new();
    // Keyed by (executing rank, engine task id): on a recovered run the
    // casualty runs a task pre-crash and its heir re-runs it, so the
    // task id alone is ambiguous.
    let mut span_end: HashMap<(u32, u64), f64> = HashMap::new();
    for (k, sp) in spans.iter().enumerate() {
        let task = sp
            .get("task")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("net-trace span {k}: missing field \"task\""))?;
        let node = sp
            .get("node")
            .and_then(Value::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| format!("net-trace span {k}: missing field \"node\""))?;
        let end = sp.get("end").and_then(Value::as_f64).unwrap_or(0.0);
        let slot = span_end.entry((node, task)).or_insert(end);
        *slot = slot.max(end);
    }
    if spans.is_empty() {
        findings.push(Finding {
            rule: "no-spans",
            message: "trace contains no task spans — sender-side causality is unverifiable"
                .to_string(),
        });
    }
    let msgs = doc
        .get("messages")
        .and_then(Value::as_array)
        .ok_or("net-trace: missing array field \"messages\"")?;
    // Scheduled logical deliveries: (from, to, key) -> schedule
    // position (distinct from the engine task id on crashed schedules).
    let mut sched: HashMap<(u32, u32, TileKey), usize> = HashMap::new();
    for (task, send) in s.sends.iter().enumerate() {
        let Some(send) = send else { continue };
        for &to in &send.to {
            sched.insert((s.rank_of[task], to, send.key), task);
        }
    }
    // Deduplicated goodput: logical message -> earliest enqueue stamp.
    let mut seen: HashMap<(u32, u32, TileKey), f64> = HashMap::new();
    let mut n_overhead = 0u64;
    for (k, m) in msgs.iter().enumerate() {
        let what = format!("net-trace message {k}");
        let kind = m.get("kind").and_then(Value::as_str).unwrap_or("goodput");
        if kind != "goodput" {
            n_overhead += 1;
            continue;
        }
        let field = |name: &str| -> Result<u32, String> {
            m.get(name)
                .and_then(Value::as_u64)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("{what}: missing or non-integer field \"{name}\""))
        };
        let slot = (
            field("from")?,
            field("to")?,
            TileKey {
                i: field("i")?,
                j: field("j")?,
                epoch: field("epoch")?,
            },
        );
        let at = m.get("at").and_then(Value::as_f64).unwrap_or(0.0);
        let e = seen.entry(slot).or_insert(at);
        *e = e.min(at);
    }
    let mut missing: Vec<_> = sched.keys().filter(|k| !seen.contains_key(k)).collect();
    missing.sort();
    for &(from, to, key) in missing {
        findings.push(Finding {
            rule: "missing-delivery",
            message: format!(
                "scheduled delivery of {} from rank {from} to rank {to} never reached the wire",
                key_str(key)
            ),
        });
    }
    let mut extra: Vec<_> = seen.keys().filter(|k| !sched.contains_key(k)).collect();
    extra.sort();
    for &(from, to, key) in extra {
        findings.push(Finding {
            rule: "unscheduled-message",
            message: format!(
                "trace carries {} from rank {from} to rank {to}, which the schedule never sends",
                key_str(key)
            ),
        });
    }
    if !spans.is_empty() {
        let mut slots: Vec<_> = seen.iter().collect();
        slots.sort_by(|a, b| a.0.cmp(b.0));
        for (&(from, to, key), &at) in slots {
            let Some(&pos) = sched.get(&(from, to, key)) else {
                continue;
            };
            // The sender executes the producing task, so its span lives
            // on rank `from` under the engine task id.
            let task = s.engine_task[pos];
            if let Some(&end) = span_end.get(&(from, task as u64)) {
                if at + 1e-9 < end {
                    findings.push(Finding {
                        rule: "non-causal-send",
                        message: format!(
                            "{} left rank {from} at {at:.6}s before its producing task {task} \
                             finished at {end:.6}s",
                            key_str(key)
                        ),
                    });
                }
            }
        }
    }
    Ok(TraceCheck {
        findings,
        n_goodput: seen.len() as u64,
        n_scheduled: sched.len() as u64,
        n_overhead,
    })
}
