//! Static DAG linter.
//!
//! Re-derives, independently of the runtime, everything the task graph of
//! a factorization must encode, and diffs it against what the graph
//! actually contains:
//!
//! * **access sets** — each task's declared reads/writes must equal the
//!   kernel's symbolic tile footprint ([`crate::access`]);
//! * **owner computes** — each task must run on the node owning every
//!   tile it writes;
//! * **acyclicity** — the dependency relation must admit a topological
//!   order;
//! * **completeness** — every RAW/WAR/WAW hazard obtained by replaying
//!   the kernels in sequential program order must be covered by a DAG
//!   path (a missing ordering is a latent data race);
//! * **minimality** — direct edges already implied by a longer path are
//!   counted and reported (the transitive-reduction deficit; the shipped
//!   builders emit none).

use crate::access::{check_op_shape, expected_accesses, expected_n_data};
use crate::view::GraphView;
use crate::Finding;
use flexdist_factor::TaskList;
use flexdist_runtime::TaskId;

/// Outcome of the static DAG lint.
#[derive(Debug, Clone)]
pub struct DagReport {
    /// All findings, in rule order. Empty means the graph is exactly the
    /// required dependency structure (up to transitive redundancy zero).
    pub findings: Vec<Finding>,
    /// Tasks examined.
    pub n_tasks: usize,
    /// Direct dependency edges in the graph.
    pub n_edges: usize,
    /// Required orderings derived from the sequential replay.
    pub n_required: usize,
    /// Direct edges already implied by a longer path.
    pub n_redundant: usize,
}

impl DagReport {
    /// No findings of any rule.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render all findings, one per line.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dag: {} tasks, {} edges, {} required orderings, {} redundant, {} finding(s)",
            self.n_tasks,
            self.n_edges,
            self.n_required,
            self.n_redundant,
            self.findings.len()
        );
        for f in &self.findings {
            let _ = writeln!(out, "  {f}");
        }
        out
    }
}

/// Lint a freshly-built task list against its own graph.
#[must_use]
pub fn lint_graph(tl: &TaskList) -> DagReport {
    lint_with_view(tl, &GraphView::from_graph(&tl.graph))
}

fn task_name(tl: &TaskList, view: &GraphView, id: TaskId) -> String {
    format!("#{id} {}({:?})", view.label_of(id), tl.ops[id as usize])
}

/// Lint `tl`'s kernel list against an explicit (possibly fault-injected)
/// graph view. [`lint_graph`] is the common entry point; tests inject
/// defects into the view to prove each rule fires.
#[must_use]
pub fn lint_with_view(tl: &TaskList, view: &GraphView) -> DagReport {
    let mut findings = Vec::new();
    let n_tasks = view.n_tasks();
    let n_edges = view.n_edges();
    if tl.ops.len() != n_tasks {
        findings.push(Finding {
            rule: "task-count",
            message: format!("{} kernels for {n_tasks} graph tasks", tl.ops.len()),
        });
        return DagReport {
            findings,
            n_tasks,
            n_edges,
            n_required: 0,
            n_redundant: 0,
        };
    }
    if view.n_data() != expected_n_data(tl.operation, tl.t) {
        findings.push(Finding {
            rule: "data-count",
            message: format!(
                "{} data handles registered, {} layout expects {}",
                view.n_data(),
                tl.operation.name(),
                expected_n_data(tl.operation, tl.t)
            ),
        });
    }

    // Per-task access sets and owner-computes. Tasks with a broken shape
    // fall back to the graph's own accesses for the replay below so one
    // bad kernel does not cascade into bogus ordering findings.
    let mut accesses = Vec::with_capacity(n_tasks);
    for id in 0..n_tasks as TaskId {
        let op = tl.ops[id as usize];
        let mut reads = view.reads_of(id).to_vec();
        reads.sort_unstable();
        let mut writes = view.writes_of(id).to_vec();
        writes.sort_unstable();
        match check_op_shape(tl.operation, op, tl.t) {
            Ok(()) => {
                let exp = expected_accesses(tl.operation, op, tl.t);
                if reads != exp.reads || writes != exp.writes {
                    findings.push(Finding {
                        rule: "access-mismatch",
                        message: format!(
                            "{}: graph reads {reads:?} writes {writes:?}, kernel \
                             footprint reads {:?} writes {:?}",
                            task_name(tl, view, id),
                            exp.reads,
                            exp.writes
                        ),
                    });
                }
                accesses.push((exp.reads, exp.writes));
            }
            Err(why) => {
                findings.push(Finding {
                    rule: "kernel-shape",
                    message: format!("task #{id}: {why}"),
                });
                accesses.push((reads.clone(), writes.clone()));
            }
        }
        for &d in &accesses[id as usize].1 {
            if (d as usize) < view.n_data() && view.data_owner(d) != view.node_of(id) {
                findings.push(Finding {
                    rule: "owner-computes",
                    message: format!(
                        "{} runs on node {} but writes datum {d} owned by node {}",
                        task_name(tl, view, id),
                        view.node_of(id),
                        view.data_owner(d)
                    ),
                });
            }
        }
    }

    // Acyclicity gates the path analyses.
    let topo = match view.topo_order() {
        Ok(order) => order,
        Err(stuck) => {
            findings.push(Finding {
                rule: "cycle",
                message: format!("dependency cycle through tasks {stuck:?}"),
            });
            return DagReport {
                findings,
                n_tasks,
                n_edges,
                n_required: 0,
                n_redundant: 0,
            };
        }
    };

    // Sequential replay over the derived access sets: RAW, WAW and WAR
    // hazards in submission order are exactly the orderings the graph
    // must provide (directly or transitively).
    let n_data = accesses
        .iter()
        .flat_map(|(r, w)| r.iter().chain(w))
        .map(|&d| d as usize + 1)
        .max()
        .unwrap_or(0)
        .max(view.n_data());
    let mut last_writer: Vec<Option<TaskId>> = vec![None; n_data];
    let mut readers: Vec<Vec<TaskId>> = vec![Vec::new(); n_data];
    let mut required: Vec<(TaskId, TaskId)> = Vec::new();
    for v in 0..n_tasks as TaskId {
        let (reads, writes) = &accesses[v as usize];
        for &d in reads {
            if let Some(w) = last_writer[d as usize] {
                required.push((w, v)); // RAW
            }
        }
        for &d in writes {
            if let Some(w) = last_writer[d as usize] {
                required.push((w, v)); // WAW
            }
            for &r in &readers[d as usize] {
                if r != v {
                    required.push((r, v)); // WAR
                }
            }
        }
        for &d in writes {
            last_writer[d as usize] = Some(v);
            readers[d as usize].clear();
        }
        for &d in reads {
            if !writes.contains(&d) {
                readers[d as usize].push(v);
            }
        }
    }
    required.sort_unstable();
    required.dedup();

    let reach = view.reachability(&topo);
    for &(u, v) in &required {
        if !reach.reaches(u, v) {
            findings.push(Finding {
                rule: "missing-edge",
                message: format!(
                    "no path {} -> {}: conflicting tile accesses are unordered (latent race)",
                    task_name(tl, view, u),
                    task_name(tl, view, v)
                ),
            });
        }
    }

    // A direct edge u -> v is redundant iff some other direct successor
    // of u already reaches v (every longer u ~> v path starts that way).
    let mut n_redundant = 0;
    for u in 0..n_tasks as TaskId {
        for &v in view.successors_of(u) {
            let redundant = view
                .successors_of(u)
                .iter()
                .any(|&w| w != v && reach.reaches(w, v));
            if redundant {
                n_redundant += 1;
                findings.push(Finding {
                    rule: "redundant-edge",
                    message: format!(
                        "direct edge {} -> {} is implied by a longer path",
                        task_name(tl, view, u),
                        task_name(tl, view, v)
                    ),
                });
            }
        }
    }

    DagReport {
        findings,
        n_tasks,
        n_edges,
        n_required: required.len(),
        n_redundant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexdist_core::twodbc;
    use flexdist_dist::TileAssignment;
    use flexdist_factor::{build_graph, Operation};
    use flexdist_kernels::KernelCostModel;

    fn task_list(op: Operation, t: usize) -> TaskList {
        let assign = TileAssignment::cyclic(&twodbc::two_dbc(2, 2), t);
        build_graph(op, &assign, &KernelCostModel::uniform(4, 10.0))
    }

    #[test]
    fn shipped_graphs_are_clean() {
        for op in [
            Operation::Lu,
            Operation::Cholesky,
            Operation::Syrk,
            Operation::Gemm,
        ] {
            let tl = task_list(op, 5);
            let rep = lint_graph(&tl);
            assert!(rep.is_clean(), "{op:?}:\n{}", rep.to_text());
            assert_eq!(rep.n_redundant, 0, "{op:?} has redundant edges");
            assert!(rep.n_required > 0);
        }
    }

    #[test]
    fn deleted_edge_is_reported_missing() {
        let tl = task_list(Operation::Lu, 3);
        let mut view = GraphView::from_graph(&tl.graph);
        // getrf(0) -> trsm: a direct RAW edge with no alternate path.
        let v = tl.graph.successors_of(0)[0];
        assert!(view.remove_edge(0, v));
        let rep = lint_with_view(&tl, &view);
        assert!(
            rep.findings.iter().any(|f| f.rule == "missing-edge"),
            "{}",
            rep.to_text()
        );
    }

    #[test]
    fn wrong_owner_is_reported() {
        let tl = task_list(Operation::Cholesky, 4);
        let mut view = GraphView::from_graph(&tl.graph);
        let wrong = (view.node_of(0) + 1) % 4;
        view.set_node(0, wrong);
        let rep = lint_with_view(&tl, &view);
        assert!(
            rep.findings.iter().any(|f| f.rule == "owner-computes"),
            "{}",
            rep.to_text()
        );
    }

    #[test]
    fn injected_cycle_is_reported() {
        let tl = task_list(Operation::Lu, 3);
        let mut view = GraphView::from_graph(&tl.graph);
        let v = tl.graph.successors_of(0)[0];
        view.add_edge(v, 0);
        let rep = lint_with_view(&tl, &view);
        assert!(rep.findings.iter().any(|f| f.rule == "cycle"));
    }

    #[test]
    fn transitively_implied_edge_is_counted_redundant() {
        let tl = task_list(Operation::Lu, 3);
        let mut view = GraphView::from_graph(&tl.graph);
        // getrf(0) already reaches every iteration-0 gemm through the
        // trsms; a direct edge to one is pure redundancy.
        let trsm = tl.graph.successors_of(0)[0];
        let gemm = *tl
            .graph
            .successors_of(trsm)
            .iter()
            .find(|&&g| g != 0)
            .unwrap();
        view.add_edge(0, gemm);
        let rep = lint_with_view(&tl, &view);
        assert_eq!(rep.n_redundant, 1, "{}", rep.to_text());
        assert!(rep.findings.iter().all(|f| f.rule == "redundant-edge"));
    }

    #[test]
    fn report_text_mentions_counts() {
        let rep = lint_graph(&task_list(Operation::Cholesky, 4));
        let text = rep.to_text();
        assert!(text.contains("required orderings"));
        assert!(text.contains("0 finding(s)"));
    }
}
