//! Hopcroft-Karp maximum bipartite matching.

use crate::Matching;

const INF: u32 = u32::MAX;
/// Sentinel "NIL" vertex index used by the Hopcroft-Karp BFS/DFS phases.
const NIL: usize = usize::MAX;

/// Compute a maximum matching of the bipartite graph given by left-side
/// adjacency lists `adj` (right vertices in `0..n_right`).
///
/// Runs in `O(E · √V)` worst case. Deterministic: the matching found depends
/// only on the adjacency order.
///
/// # Panics
/// Panics (in debug builds) if an adjacency entry is `>= n_right`.
#[must_use]
pub fn hopcroft_karp(adj: &[Vec<usize>], n_right: usize) -> Matching {
    let n_left = adj.len();
    debug_assert!(adj.iter().flatten().all(|&v| v < n_right));

    // pair_u[u] = right matched to left u (or NIL), pair_v[v] = left matched
    // to right v (or NIL).
    let mut pair_u = vec![NIL; n_left];
    let mut pair_v = vec![NIL; n_right];
    let mut dist = vec![INF; n_left];
    let mut queue: Vec<usize> = Vec::with_capacity(n_left);

    loop {
        // BFS phase: layer the graph from free left vertices.
        queue.clear();
        let mut found_augmenting_layer = false;
        for u in 0..n_left {
            if pair_u[u] == NIL {
                dist[u] = 0;
                queue.push(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &v in &adj[u] {
                let w = pair_v[v];
                if w == NIL {
                    found_augmenting_layer = true;
                } else if dist[w] == INF {
                    dist[w] = dist[u] + 1;
                    queue.push(w);
                }
            }
        }
        if !found_augmenting_layer {
            break;
        }
        // DFS phase: find a maximal set of vertex-disjoint shortest
        // augmenting paths. Iterative DFS to avoid recursion depth limits on
        // large graphs.
        for start in 0..n_left {
            if pair_u[start] == NIL {
                try_augment(adj, &mut pair_u, &mut pair_v, &mut dist, start);
            }
        }
    }

    let left_to_right = pair_u
        .iter()
        .map(|&v| if v == NIL { None } else { Some(v) })
        .collect();
    let right_to_left = pair_v
        .iter()
        .map(|&u| if u == NIL { None } else { Some(u) })
        .collect();
    Matching {
        left_to_right,
        right_to_left,
    }
}

/// Iterative DFS attempting to augment from free left vertex `start` along
/// the BFS layering in `dist`. Returns whether an augmenting path was found
/// (and applied).
fn try_augment(
    adj: &[Vec<usize>],
    pair_u: &mut [usize],
    pair_v: &mut [usize],
    dist: &mut [u32],
    start: usize,
) -> bool {
    // Explicit stack of (left vertex, index of next neighbour to try).
    let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
    // Path of (left, right) edges currently on the stack.
    let mut path: Vec<(usize, usize)> = Vec::new();

    while let Some(&mut (u, ref mut idx)) = stack.last_mut() {
        if *idx < adj[u].len() {
            let v = adj[u][*idx];
            *idx += 1;
            let w = pair_v[v];
            if w == NIL {
                // Found a free right vertex: apply the augmenting path.
                path.push((u, v));
                for &(pu, pv) in &path {
                    pair_u[pu] = pv;
                    pair_v[pv] = pu;
                }
                return true;
            }
            if dist[w] == dist[u] + 1 {
                path.push((u, v));
                stack.push((w, 0));
            }
        } else {
            // Dead end: this vertex cannot reach a free right vertex in this
            // phase; mark it so sibling DFS calls skip it.
            dist[u] = INF;
            stack.pop();
            path.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_maximum(adj: &[Vec<usize>], n_right: usize, expected: usize) {
        let m = hopcroft_karp(adj, n_right);
        assert_eq!(m.size(), expected, "matching size");
        assert!(m.is_consistent(adj));
    }

    #[test]
    fn empty_graph() {
        check_maximum(&[], 0, 0);
        check_maximum(&[vec![], vec![]], 3, 0);
    }

    #[test]
    fn perfect_matching_identity() {
        let adj: Vec<Vec<usize>> = (0..5).map(|i| vec![i]).collect();
        check_maximum(&adj, 5, 5);
    }

    #[test]
    fn requires_augmenting_paths() {
        // Greedy (in adjacency order) gets 2, maximum is 3:
        //   0-{0,1}, 1-{0}, 2-{1} has max 2 ... craft a 3-augmenting case.
        // u0-{v0,v1}, u1-{v0}, u2-{v1}: maximum is 2 (only 2 distinct rights
        // reachable by u1,u2 and they cover both). Use a real flower:
        let adj = vec![vec![0, 1], vec![0], vec![1, 2]];
        check_maximum(&adj, 3, 3);
    }

    #[test]
    fn complete_bipartite() {
        let adj: Vec<Vec<usize>> = (0..6).map(|_| (0..4).collect()).collect();
        check_maximum(&adj, 4, 4);
    }

    #[test]
    fn chain_graph_alternating() {
        // Path graph u0-v0-u1-v1-u2-v2...: maximum matching = n.
        let n = 50;
        let mut adj = vec![Vec::new(); n];
        for u in 0..n {
            adj[u].push(u);
            if u + 1 < n {
                adj[u + 1].push(u);
            }
        }
        check_maximum(&adj, n, n);
    }

    #[test]
    fn koenig_worst_case_shape() {
        // Bipartite graph where many short augmenting paths exist first and
        // long ones later; checks phase iteration.
        let adj = vec![
            vec![0, 1],
            vec![0, 4],
            vec![2, 3],
            vec![1, 2],
            vec![3],
            vec![4, 0],
        ];
        check_maximum(&adj, 5, 5);
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        let adj = vec![vec![0, 0, 0], vec![0, 1, 1]];
        check_maximum(&adj, 2, 2);
    }

    #[test]
    fn large_random_graph_matches_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n_left = 200;
        let n_right = 180;
        let mut adj = vec![Vec::new(); n_left];
        for row in adj.iter_mut() {
            for v in 0..n_right {
                if rng.gen_bool(0.03) {
                    row.push(v);
                }
            }
        }
        let hk = hopcroft_karp(&adj, n_right);
        let slow = reference_max_matching(&adj, n_right);
        assert_eq!(hk.size(), slow);
        assert!(hk.is_consistent(&adj));
    }

    /// Simple O(V·E) Hungarian-style augmenting algorithm used as a test
    /// oracle.
    fn reference_max_matching(adj: &[Vec<usize>], n_right: usize) -> usize {
        fn try_kuhn(
            u: usize,
            adj: &[Vec<usize>],
            seen: &mut [bool],
            pair_v: &mut [Option<usize>],
        ) -> bool {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    if pair_v[v].is_none() || try_kuhn(pair_v[v].unwrap(), adj, seen, pair_v) {
                        pair_v[v] = Some(u);
                        return true;
                    }
                }
            }
            false
        }
        let mut pair_v = vec![None; n_right];
        let mut total = 0;
        for u in 0..adj.len() {
            let mut seen = vec![false; n_right];
            if try_kuhn(u, adj, &mut seen, &mut pair_v) {
                total += 1;
            }
        }
        total
    }
}
