//! Bipartite graph container with capacitated-right-side expansion.

use crate::{greedy_matching, hopcroft_karp, Matching};

/// A bipartite graph `(L, R, E)` stored as left-side adjacency lists.
///
/// Left vertices are `0..n_left`, right vertices `0..n_right`. Edges are
/// directed from left to right for storage purposes only.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_right: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Create a graph with `n_left` left and `n_right` right vertices and no
    /// edges.
    #[must_use]
    pub fn new(n_left: usize, n_right: usize) -> Self {
        Self {
            n_right,
            adj: vec![Vec::new(); n_left],
        }
    }

    /// Number of left vertices.
    #[must_use]
    pub fn n_left(&self) -> usize {
        self.adj.len()
    }

    /// Number of right vertices.
    #[must_use]
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Total number of edges.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Add an edge between left vertex `u` and right vertex `v`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.adj.len(), "left vertex {u} out of range");
        assert!(v < self.n_right, "right vertex {v} out of range");
        self.adj[u].push(v);
    }

    /// Neighbours of left vertex `u`.
    #[must_use]
    pub fn neighbours(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Left-side adjacency lists.
    #[must_use]
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adj
    }

    /// Maximum matching via Hopcroft-Karp.
    #[must_use]
    pub fn maximum_matching(&self) -> Matching {
        hopcroft_karp(&self.adj, self.n_right)
    }

    /// Maximal (greedy) matching; at least half the maximum size.
    #[must_use]
    pub fn maximal_matching_greedy(&self) -> Matching {
        greedy_matching(&self.adj, self.n_right)
    }

    /// Build the "capacitated" expansion used by GCR&M: every right vertex
    /// `v` is replaced by `copies` identical copies `v*copies .. v*copies +
    /// copies`, and a maximum matching is computed on the expanded graph.
    ///
    /// Returns, for each left vertex, the *original* right vertex it is
    /// matched to (copies are collapsed back), or `None` if unmatched.
    /// This realizes a degree-constrained assignment where each right vertex
    /// may absorb up to `copies` left vertices.
    #[must_use]
    pub fn capacitated_assignment(&self, copies: usize) -> Vec<Option<usize>> {
        if copies == 0 {
            return vec![None; self.n_left()];
        }
        let mut expanded: Vec<Vec<usize>> = Vec::with_capacity(self.n_left());
        for nbrs in &self.adj {
            let mut row = Vec::with_capacity(nbrs.len() * copies);
            for &v in nbrs {
                for c in 0..copies {
                    row.push(v * copies + c);
                }
            }
            expanded.push(row);
        }
        let m = hopcroft_karp(&expanded, self.n_right * copies);
        m.left_to_right
            .into_iter()
            .map(|mv| mv.map(|v| v / copies))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = BipartiteGraph::new(3, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(2, 1);
        assert_eq!(g.n_left(), 3);
        assert_eq!(g.n_right(), 2);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbours(0), &[0, 1]);
        assert!(g.neighbours(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "right vertex")]
    fn add_edge_bounds_checked() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 5);
    }

    #[test]
    fn maximum_matching_on_small_graph() {
        let mut g = BipartiteGraph::new(3, 3);
        // A classic augmenting-path case: greedy can get stuck at 2.
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 1);
        let m = g.maximum_matching();
        assert_eq!(m.size(), 2); // only 2 right vertices are reachable
        assert!(m.is_consistent(g.adjacency()));
    }

    #[test]
    fn capacitated_assignment_respects_capacity() {
        // 5 left vertices all adjacent to right vertex 0, capacity 3.
        let mut g = BipartiteGraph::new(5, 1);
        for u in 0..5 {
            g.add_edge(u, 0);
        }
        let assign = g.capacitated_assignment(3);
        let matched = assign.iter().filter(|a| a.is_some()).count();
        assert_eq!(matched, 3);
        for a in assign.into_iter().flatten() {
            assert_eq!(a, 0);
        }
    }

    #[test]
    fn capacitated_assignment_zero_copies() {
        let mut g = BipartiteGraph::new(2, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        assert_eq!(g.capacitated_assignment(0), vec![None, None]);
    }
}
