//! Bipartite matching algorithms.
//!
//! This crate is a small, dependency-free substrate used by the GCR&M
//! distribution heuristic of
//! *Data Distribution Schemes for Dense Linear Algebra Factorizations on Any
//! Number of Nodes* (IPDPS 2023), whose second phase assigns pattern cells to
//! node copies via maximum bipartite matching (Algorithm 1, lines 11-12).
//!
//! Two algorithms are provided:
//!
//! * [`hopcroft_karp`] — maximum matching in `O(E · √V)`; the workhorse.
//! * [`greedy_matching`] — a maximal (not maximum) matching in `O(E)`;
//!   useful as a fast baseline and as a correctness oracle lower bound.
//!
//! A convenience wrapper [`BipartiteGraph`] stores the adjacency of the left
//! side and exposes both algorithms plus a multi-copy ("capacitated right
//! side") helper used by GCR&M, where every node on the right side is
//! replicated `k` times.

#![forbid(unsafe_code)]

mod graph;
mod greedy;
mod hk;

pub use graph::BipartiteGraph;
pub use greedy::greedy_matching;
pub use hk::hopcroft_karp;

/// Result of a matching computation.
///
/// `left_to_right[u] = Some(v)` iff left vertex `u` is matched to right
/// vertex `v`. The number of matched pairs is [`Matching::size`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// For each left vertex, the matched right vertex (if any).
    pub left_to_right: Vec<Option<usize>>,
    /// For each right vertex, the matched left vertex (if any).
    pub right_to_left: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    #[must_use]
    pub fn size(&self) -> usize {
        self.left_to_right.iter().filter(|m| m.is_some()).count()
    }

    /// Check internal consistency: the two direction maps must mirror each
    /// other and every edge used must exist in `adj`.
    #[must_use]
    pub fn is_consistent(&self, adj: &[Vec<usize>]) -> bool {
        for (u, m) in self.left_to_right.iter().enumerate() {
            if let Some(v) = *m {
                if self.right_to_left.get(v).copied().flatten() != Some(u) {
                    return false;
                }
                if !adj[u].contains(&v) {
                    return false;
                }
            }
        }
        for (v, m) in self.right_to_left.iter().enumerate() {
            if let Some(u) = *m {
                if self.left_to_right.get(u).copied().flatten() != Some(v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_size_counts_pairs() {
        let m = Matching {
            left_to_right: vec![Some(0), None, Some(2)],
            right_to_left: vec![Some(0), None, Some(2)],
        };
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn consistency_detects_mirror_violation() {
        let m = Matching {
            left_to_right: vec![Some(0)],
            right_to_left: vec![None],
        };
        assert!(!m.is_consistent(&[vec![0]]));
    }

    #[test]
    fn consistency_detects_phantom_edge() {
        let m = Matching {
            left_to_right: vec![Some(1)],
            right_to_left: vec![None, Some(0)],
        };
        // Edge (0, 1) is not present in the adjacency.
        assert!(!m.is_consistent(&[vec![0]]));
    }
}
