//! Greedy maximal matching (baseline / fast path).

use crate::Matching;

/// Compute a *maximal* (not necessarily maximum) matching by scanning left
/// vertices in order and matching each to its first free neighbour.
///
/// Runs in `O(E)`. A maximal matching has size at least half the maximum,
/// which makes this a useful baseline for the GCR&M ablation and a cheap
/// lower bound in tests.
#[must_use]
pub fn greedy_matching(adj: &[Vec<usize>], n_right: usize) -> Matching {
    let mut left_to_right = vec![None; adj.len()];
    let mut right_to_left = vec![None; n_right];
    for (u, nbrs) in adj.iter().enumerate() {
        for &v in nbrs {
            if right_to_left[v].is_none() {
                right_to_left[v] = Some(u);
                left_to_right[u] = Some(v);
                break;
            }
        }
    }
    Matching {
        left_to_right,
        right_to_left,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp;

    #[test]
    fn greedy_is_maximal() {
        // No edge should remain with both endpoints free.
        let adj = vec![vec![0, 1], vec![0], vec![1, 2], vec![2]];
        let m = greedy_matching(&adj, 3);
        assert!(m.is_consistent(&adj));
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(
                    m.left_to_right[u].is_some() || m.right_to_left[v].is_some(),
                    "edge ({u},{v}) left unmatched on both sides"
                );
            }
        }
    }

    #[test]
    fn greedy_at_least_half_of_maximum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..20 {
            let n = 40 + trial;
            let mut adj = vec![Vec::new(); n];
            for row in adj.iter_mut() {
                for v in 0..n {
                    if rng.gen_bool(0.05) {
                        row.push(v);
                    }
                }
            }
            let g = greedy_matching(&adj, n).size();
            let opt = hopcroft_karp(&adj, n).size();
            assert!(2 * g >= opt, "greedy {g} < half of optimal {opt}");
            assert!(g <= opt);
        }
    }
}
