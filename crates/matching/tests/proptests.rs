//! Property-based tests of the matching algorithms against a slow oracle.

use flexdist_matching::{greedy_matching, hopcroft_karp, BipartiteGraph};
use proptest::prelude::*;

/// Kuhn's algorithm as an O(V·E) oracle.
fn kuhn_max_matching(adj: &[Vec<usize>], n_right: usize) -> usize {
    fn try_augment(
        u: usize,
        adj: &[Vec<usize>],
        seen: &mut [bool],
        pair_v: &mut [Option<usize>],
    ) -> bool {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                if pair_v[v].is_none() || try_augment(pair_v[v].unwrap(), adj, seen, pair_v) {
                    pair_v[v] = Some(u);
                    return true;
                }
            }
        }
        false
    }
    let mut pair_v = vec![None; n_right];
    let mut total = 0;
    for u in 0..adj.len() {
        let mut seen = vec![false; n_right];
        if try_augment(u, adj, &mut seen, &mut pair_v) {
            total += 1;
        }
    }
    total
}

fn arb_graph() -> impl Strategy<Value = (Vec<Vec<usize>>, usize)> {
    (1usize..40, 1usize..40).prop_flat_map(|(nl, nr)| {
        (
            proptest::collection::vec(proptest::collection::vec(0..nr, 0..8), nl..=nl),
            Just(nr),
        )
    })
}

proptest! {
    /// Hopcroft-Karp matches the oracle's maximum size and is consistent.
    #[test]
    fn hk_is_maximum((adj, n_right) in arb_graph()) {
        let m = hopcroft_karp(&adj, n_right);
        prop_assert!(m.is_consistent(&adj));
        prop_assert_eq!(m.size(), kuhn_max_matching(&adj, n_right));
    }

    /// Greedy is maximal: every edge touches a matched endpoint; and its
    /// size is within a factor 2 of the maximum.
    #[test]
    fn greedy_is_maximal_and_half_optimal((adj, n_right) in arb_graph()) {
        let g = greedy_matching(&adj, n_right);
        prop_assert!(g.is_consistent(&adj));
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                prop_assert!(g.left_to_right[u].is_some() || g.right_to_left[v].is_some());
            }
        }
        let opt = hopcroft_karp(&adj, n_right).size();
        prop_assert!(g.size() <= opt);
        prop_assert!(2 * g.size() >= opt);
    }

    /// Matching size never exceeds either side.
    #[test]
    fn size_bounded_by_sides((adj, n_right) in arb_graph()) {
        let m = hopcroft_karp(&adj, n_right);
        prop_assert!(m.size() <= adj.len());
        prop_assert!(m.size() <= n_right);
    }

    /// Capacitated assignment respects capacities and edge membership.
    #[test]
    fn capacitated_respects_capacity((adj, n_right) in arb_graph(), copies in 1usize..4) {
        let mut g = BipartiteGraph::new(adj.len(), n_right);
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                g.add_edge(u, v);
            }
        }
        let assign = g.capacitated_assignment(copies);
        let mut counts = vec![0usize; n_right];
        for (u, a) in assign.iter().enumerate() {
            if let Some(v) = *a {
                prop_assert!(adj[u].contains(&v), "assigned along a non-edge");
                counts[v] += 1;
            }
        }
        prop_assert!(counts.iter().all(|&c| c <= copies));
    }
}
