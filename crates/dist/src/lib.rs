//! # flexdist-dist
//!
//! Replicating a distribution [`Pattern`](flexdist_core::Pattern) over a
//! concrete tiled matrix, and analysing the result.
//!
//! * [`TileAssignment`] — the `t × t` map from matrix tiles to owner nodes,
//!   including the **extended** greedy placement of undefined (diagonal)
//!   pattern cells used by extended SBC and GCR&M (paper §V);
//! * [`comm`] — exact per-iteration communication-volume counting for
//!   right-looking LU and Cholesky under the owner-computes rule, together
//!   with the closed-form estimates of paper Eq. 1 / Eq. 2;
//! * [`schedule`] — the underlying Fig. 2 broadcast walks as a reusable
//!   message stream (sender, tile, epoch, distinct receiver set), which
//!   the volume counters fold over and the distributed executor and the
//!   static protocol verifier both mirror;
//! * [`splice`] — the post-crash fusion of two walks across a crash
//!   point: the exact message stream (and its total / recovered volume
//!   split) of a run that re-maps a dead node's tiles onto survivors;
//! * [`load`] — per-node tile-count and flop-weighted load reports.

#![forbid(unsafe_code)]

pub mod assignment;
pub mod comm;
pub mod load;
pub mod schedule;
pub mod splice;

pub use assignment::TileAssignment;
pub use comm::{cholesky_comm_volume, gemm_comm_volume, lu_comm_volume, CommBreakdown};
pub use load::LoadReport;
pub use schedule::{cholesky_broadcasts, lu_broadcasts, BcastClass, BcastMsg};
pub use splice::{
    cholesky_spliced_broadcasts, lu_spliced_broadcasts, spliced_volume, SplicedMsg, SplicedVolume,
};
