//! Per-node load statistics for a tile assignment.
//!
//! Two weightings are provided: raw tile counts (storage balance) and
//! flop-weighted counts (compute balance over the whole factorization).
//! Under the owner-computes rule, the work attached to tile `(i, j)` is the
//! chain of updates it receives: one GEMM per iteration `ℓ < min(i, j)`,
//! plus the panel operation at `ℓ = min(i, j)`. Weighting each tile by
//! `min(i, j) + 1` therefore ranks nodes by total kernel invocations, a
//! good proxy for flops when all tiles have the same size.

use crate::assignment::TileAssignment;

/// Which factorization the load is measured for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadKind {
    /// Full-matrix LU.
    Lu,
    /// Lower-triangle Cholesky.
    Cholesky,
}

/// Per-node load summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// What was measured.
    pub kind: LoadKind,
    /// Weighted work units per node.
    pub work: Vec<f64>,
    /// Plain tile counts per node.
    pub tiles: Vec<usize>,
}

impl LoadReport {
    /// Compute the report for `a`.
    #[must_use]
    pub fn new(a: &TileAssignment, kind: LoadKind) -> Self {
        let t = a.tiles();
        let n = a.n_nodes() as usize;
        let mut work = vec![0.0; n];
        let mut tiles = vec![0usize; n];
        for i in 0..t {
            let cols: Box<dyn Iterator<Item = usize>> = match kind {
                LoadKind::Lu => Box::new(0..t),
                LoadKind::Cholesky => Box::new(0..=i),
            };
            for j in cols {
                let o = a.owner(i, j) as usize;
                tiles[o] += 1;
                work[o] += (i.min(j) + 1) as f64;
            }
        }
        Self { kind, work, tiles }
    }

    /// Ratio of the maximum node work to the mean (1.0 = perfectly
    /// balanced; the factorization's parallel efficiency upper bound is the
    /// reciprocal of this).
    #[must_use]
    pub fn max_over_mean(&self) -> f64 {
        let max = self.work.iter().copied().fold(0.0f64, f64::max);
        let mean = self.work.iter().sum::<f64>() / self.work.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        max / mean
    }

    /// Coefficient of variation of the per-node work (std / mean).
    #[must_use]
    pub fn coefficient_of_variation(&self) -> f64 {
        let n = self.work.len() as f64;
        let mean = self.work.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .work
            .iter()
            .map(|w| (w - mean) * (w - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexdist_core::{g2dbc, sbc, twodbc};

    #[test]
    fn lu_tile_counts_match_assignment() {
        let pat = twodbc::two_dbc(2, 2);
        let a = TileAssignment::cyclic(&pat, 8);
        let rep = LoadReport::new(&a, LoadKind::Lu);
        assert_eq!(rep.tiles.iter().sum::<usize>(), 64);
        assert_eq!(rep.tiles, a.tile_counts_full());
    }

    #[test]
    fn cholesky_counts_lower_triangle_only() {
        let pat = twodbc::two_dbc(2, 2);
        let a = TileAssignment::cyclic(&pat, 8);
        let rep = LoadReport::new(&a, LoadKind::Cholesky);
        assert_eq!(rep.tiles.iter().sum::<usize>(), 8 * 9 / 2);
        assert_eq!(rep.tiles, a.tile_counts_lower());
    }

    #[test]
    fn square_2dbc_is_well_balanced_for_lu() {
        let pat = twodbc::two_dbc(4, 4);
        let a = TileAssignment::cyclic(&pat, 64);
        let rep = LoadReport::new(&a, LoadKind::Lu);
        assert!(rep.max_over_mean() < 1.18, "{}", rep.max_over_mean());
        assert!(rep.coefficient_of_variation() < 0.06);
    }

    #[test]
    fn g2dbc_is_well_balanced_for_awkward_p() {
        let pat = g2dbc::g2dbc(23);
        let a = TileAssignment::cyclic(&pat, 120);
        let rep = LoadReport::new(&a, LoadKind::Lu);
        assert!(
            rep.max_over_mean() < 1.08,
            "G-2DBC imbalance {}",
            rep.max_over_mean()
        );
    }

    #[test]
    fn degenerate_grid_balances_but_communicates() {
        // The 23x1 grid is *balanced* (that is not its problem; cost is).
        let pat = twodbc::two_dbc(23, 1);
        let a = TileAssignment::cyclic(&pat, 115);
        let rep = LoadReport::new(&a, LoadKind::Lu);
        assert!(rep.max_over_mean() < 1.18, "{}", rep.max_over_mean());
    }

    #[test]
    fn sbc_extended_balances_cholesky() {
        let pat = sbc::sbc_extended(21).unwrap();
        let a = crate::TileAssignment::extended(&pat, 105);
        let rep = LoadReport::new(&a, LoadKind::Cholesky);
        assert!(
            rep.max_over_mean() < 1.12,
            "SBC imbalance {}",
            rep.max_over_mean()
        );
    }

    #[test]
    fn max_over_mean_of_empty_work_is_one() {
        let pat = twodbc::two_dbc(1, 1);
        let a = TileAssignment::cyclic(&pat, 1);
        let rep = LoadReport::new(&a, LoadKind::Lu);
        assert!(rep.max_over_mean() >= 1.0);
        assert_eq!(rep.coefficient_of_variation(), 0.0);
    }
}
