//! Exact communication-volume counting for right-looking tiled LU and
//! Cholesky under the owner-computes rule, plus the paper's closed-form
//! estimates (Eq. 1 and Eq. 2).
//!
//! The closed forms neglect two boundary effects (paper §III-A): the
//! shrinking of the trailing submatrix below one full pattern during the
//! last iterations, and partial pattern replication when the tile count is
//! not a multiple of the pattern size. The exact counters here capture both,
//! which lets the tests quantify how fast the estimate converges.

use crate::assignment::TileAssignment;
use crate::schedule::{cholesky_broadcasts, lu_broadcasts, BcastClass, BcastMsg};
use flexdist_core::Pattern;

/// Communication volumes in *tiles sent* (one unit = one tile transferred to
/// one distinct remote node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CommBreakdown {
    /// Broadcasts of the factorized diagonal tile to the panel solvers
    /// (GETRF/POTRF output → TRSM inputs). Lower-order term, not part of
    /// Eq. 1/2.
    pub panel: u64,
    /// Panel tiles sent into the trailing-submatrix update (TRSM outputs →
    /// GEMM/SYRK inputs). This is the dominant term modeled by Eq. 1/2.
    pub trailing: u64,
}

impl CommBreakdown {
    /// Total tiles sent.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.panel + self.trailing
    }
}

/// Reusable distinct-receiver accumulator (stamp vector keyed by node).
struct ReceiverSet {
    stamp: Vec<u32>,
    current: u32,
    count: u64,
}

impl ReceiverSet {
    fn new(n_nodes: u32) -> Self {
        Self {
            stamp: vec![0; n_nodes as usize],
            current: 0,
            count: 0,
        }
    }

    /// Start counting receivers for a new message, excluding `sender`.
    fn begin(&mut self, sender: u32) {
        self.current += 1;
        self.count = 0;
        self.stamp[sender as usize] = self.current;
    }

    fn add(&mut self, node: u32) {
        let s = &mut self.stamp[node as usize];
        if *s != self.current {
            *s = self.current;
            self.count += 1;
        }
    }
}

/// Exact tile-send count of a right-looking tiled LU factorization
/// (`A = L·U`, no pivoting, as in Chameleon's `getrf_nopiv`) on a `t × t`
/// tile grid with the given owner map.
///
/// Per iteration `ℓ`:
/// * the factorized tile `(ℓ,ℓ)` is sent to the distinct owners of column
///   tiles `(i,ℓ)`, `i > ℓ`, and row tiles `(ℓ,j)`, `j > ℓ` (TRSM inputs) —
///   counted in [`CommBreakdown::panel`];
/// * each solved tile `(i,ℓ)` is sent to the distinct owners of row
///   `(i, j)`, `j > ℓ`, and each `(ℓ,j)` to the distinct owners of column
///   `(i, j)`, `i > ℓ` (GEMM inputs) — counted in
///   [`CommBreakdown::trailing`].
#[must_use]
pub fn lu_comm_volume(a: &TileAssignment) -> CommBreakdown {
    accumulate(lu_broadcasts(a))
}

/// Fold a broadcast stream into per-class tile-send counts. The volume
/// counters are thin folds over [`crate::schedule`]'s message stream, so
/// every hand-count and estimate-convergence test below doubles as a
/// fidelity proof of the walk itself.
fn accumulate(msgs: impl Iterator<Item = BcastMsg>) -> CommBreakdown {
    let mut out = CommBreakdown::default();
    for m in msgs {
        let n = m.receivers.len() as u64;
        match m.class {
            BcastClass::Panel => out.panel += n,
            BcastClass::Trailing => out.trailing += n,
        }
    }
    out
}

/// Exact tile-send count of a right-looking tiled Cholesky factorization
/// (`A = L·Lᵀ`, lower triangle stored) on a `t × t` tile grid.
///
/// Per iteration `ℓ`:
/// * the factorized tile `(ℓ,ℓ)` is sent to the distinct owners of
///   `(i,ℓ)`, `i > ℓ` (TRSM inputs) — [`CommBreakdown::panel`];
/// * each solved tile `(i,ℓ)` is sent to the distinct owners of its
///   *trailing colrow*: row tiles `(i,j)` for `ℓ < j ≤ i` and column tiles
///   `(j,i)` for `j > i` (SYRK/GEMM inputs) — [`CommBreakdown::trailing`].
#[must_use]
pub fn cholesky_comm_volume(a: &TileAssignment) -> CommBreakdown {
    accumulate(cholesky_broadcasts(a))
}

/// Exact tile-send count of a tiled matrix product `C = A·B` where `A`,
/// `B` and `C` all follow the same owner map.
///
/// Inputs are read-only, so (with the runtime's replica cache) each input
/// tile is sent at most once to each node that consumes it: `A(i,l)` goes
/// to the distinct owners of `C` row `i`, `B(l,j)` to the distinct owners
/// of `C` column `j`.
#[must_use]
pub fn gemm_comm_volume(a: &TileAssignment) -> CommBreakdown {
    let t = a.tiles();
    let mut rs = ReceiverSet::new(a.n_nodes());
    let mut out = CommBreakdown::default();
    for l in 0..t {
        for i in 0..t {
            rs.begin(a.owner(i, l));
            for j in 0..t {
                rs.add(a.owner(i, j));
            }
            out.trailing += rs.count;
        }
        for j in 0..t {
            rs.begin(a.owner(l, j));
            for i in 0..t {
                rs.add(a.owner(i, j));
            }
            out.trailing += rs.count;
        }
    }
    out
}

/// Closed-form estimate of the GEMM volume: `t² · (x̄ + ȳ − 2)` (each of
/// the `t²` tiles of `A` reaches `x̄ − 1` remote row owners on average,
/// symmetrically for `B`).
#[must_use]
pub fn gemm_comm_estimate(pattern: &Pattern, t: usize) -> f64 {
    let tt = t as f64;
    tt * tt * (flexdist_core::lu_cost(pattern) - 2.0)
}

/// Closed-form estimate of the LU trailing-update volume (paper Eq. 1):
/// `t(t+1)/2 · (x̄ + ȳ − 2)`.
#[must_use]
pub fn lu_comm_estimate(pattern: &Pattern, t: usize) -> f64 {
    let tt = t as f64;
    tt * (tt + 1.0) / 2.0 * (flexdist_core::lu_cost(pattern) - 2.0)
}

/// Closed-form estimate of the Cholesky trailing-update volume (paper
/// Eq. 2): `t(t+1)/2 · (z̄ − 1)` for a square pattern.
///
/// # Panics
/// Panics if the pattern is not square.
#[must_use]
pub fn cholesky_comm_estimate(pattern: &Pattern, t: usize) -> f64 {
    let tt = t as f64;
    tt * (tt + 1.0) / 2.0 * (flexdist_core::cholesky_cost(pattern) - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexdist_core::{g2dbc, sbc, twodbc};

    #[test]
    fn single_node_never_communicates() {
        let pat = twodbc::two_dbc(1, 1);
        let a = TileAssignment::cyclic(&pat, 12);
        assert_eq!(lu_comm_volume(&a).total(), 0);
        assert_eq!(cholesky_comm_volume(&a).total(), 0);
    }

    #[test]
    fn two_tiles_two_nodes_lu_hand_count() {
        // 2x2 tiles on pattern [0 1 / 1 0] (anti-diagonal).
        let pat =
            flexdist_core::Pattern::from_rows(2, &[vec![Some(0), Some(1)], vec![Some(1), Some(0)]]);
        let a = TileAssignment::cyclic(&pat, 2);
        // Iteration 0: (0,0)@0 -> owners of (1,0)=1 and (0,1)=1 -> 1 send.
        //   (1,0)@1 -> owner of (1,1)=0 -> 1 send.
        //   (0,1)@1 -> owner of (1,1)=0 -> 1 send.
        // Iteration 1: nothing (no trailing).
        let v = lu_comm_volume(&a);
        assert_eq!(v.panel, 1);
        assert_eq!(v.trailing, 2);
    }

    #[test]
    fn two_tiles_cholesky_hand_count() {
        let pat =
            flexdist_core::Pattern::from_rows(2, &[vec![Some(0), Some(1)], vec![Some(1), Some(0)]]);
        let a = TileAssignment::cyclic(&pat, 2);
        // Iter 0: (0,0)@0 -> owner of (1,0)=1: panel 1.
        //   (1,0)@1 -> colrow 1 trailing = {(1,1)@0}: trailing 1.
        let v = cholesky_comm_volume(&a);
        assert_eq!(v.panel, 1);
        assert_eq!(v.trailing, 1);
    }

    #[test]
    fn lu_estimate_converges_to_exact() {
        // Eq. 1 over-counts boundary iterations; relative error shrinks as
        // the tile count grows (paper §III-A).
        let pat = twodbc::two_dbc(3, 2);
        for (t, tol) in [(12usize, 0.35), (48, 0.12), (120, 0.05)] {
            let a = TileAssignment::cyclic(&pat, t);
            let exact = lu_comm_volume(&a).trailing as f64;
            let est = lu_comm_estimate(&pat, t);
            let rel = (est - exact).abs() / est;
            assert!(
                rel < tol,
                "t = {t}: exact {exact}, estimate {est}, rel err {rel}"
            );
            // The estimate is an over-approximation (domain shrinking only
            // removes communications).
            assert!(est >= exact * 0.999, "t = {t}");
        }
    }

    #[test]
    fn cholesky_estimate_converges_to_exact() {
        let pat = sbc::sbc_basic(21).unwrap();
        for (t, tol) in [(21usize, 0.35), (84, 0.12), (168, 0.06)] {
            let a = TileAssignment::extended(&pat, t);
            let exact = cholesky_comm_volume(&a).trailing as f64;
            let est = cholesky_comm_estimate(&pat, t);
            let rel = (est - exact).abs() / est;
            assert!(
                rel < tol,
                "t = {t}: exact {exact}, estimate {est}, rel err {rel}"
            );
        }
    }

    #[test]
    fn extended_diagonal_does_not_add_cholesky_cost() {
        // The extended assignment picks diagonal owners from the colrow, so
        // exact volumes for basic and extended SBC stay close (they differ
        // only through which colrow member owns each diagonal tile).
        let ext = sbc::sbc_extended(21).unwrap();
        let bas = sbc::sbc_basic(21).unwrap();
        let t = 63;
        let ve = cholesky_comm_volume(&TileAssignment::extended(&ext, t)).total();
        let vb = cholesky_comm_volume(&TileAssignment::extended(&bas, t)).total();
        let rel = (ve as f64 - vb as f64).abs() / vb as f64;
        assert!(rel < 0.05, "extended {ve} vs basic {vb}");
    }

    #[test]
    fn g2dbc_sends_less_than_bad_2dbc() {
        // P = 23: G-2DBC must beat the degenerate 23x1 grid on volume.
        let t = 60;
        let g = TileAssignment::cyclic(&g2dbc::g2dbc(23), t);
        let bad = TileAssignment::cyclic(&twodbc::two_dbc(23, 1), t);
        let vg = lu_comm_volume(&g).total();
        let vb = lu_comm_volume(&bad).total();
        assert!(
            vg * 2 < vb,
            "G-2DBC {vg} should send far less than 23x1 grid {vb}"
        );
    }

    #[test]
    fn sbc_beats_square_2dbc_for_cholesky() {
        // Paper/SC'22: SBC generates ~sqrt(2) less volume than 2DBC.
        let t = 72;
        let sbc_pat = sbc::sbc_extended(36).unwrap();
        let dbc_pat = twodbc::two_dbc(6, 6);
        let vs = cholesky_comm_volume(&TileAssignment::extended(&sbc_pat, t)).total();
        let vd = cholesky_comm_volume(&TileAssignment::cyclic(&dbc_pat, t)).total();
        assert!(vs < vd, "SBC {vs} !< 2DBC {vd}");
        let ratio = vd as f64 / vs as f64;
        assert!(
            ratio > 1.2,
            "expected ~sqrt(2) advantage, got ratio {ratio}"
        );
    }

    #[test]
    fn volume_scales_quadratically_with_tiles() {
        let pat = twodbc::two_dbc(4, 4);
        let v1 = lu_comm_volume(&TileAssignment::cyclic(&pat, 40)).trailing as f64;
        let v2 = lu_comm_volume(&TileAssignment::cyclic(&pat, 80)).trailing as f64;
        let ratio = v2 / v1;
        assert!(
            (ratio - 4.0).abs() < 0.4,
            "doubling tiles should ~4x the volume, got {ratio}"
        );
    }
}

#[cfg(test)]
mod gemm_tests {
    use super::*;
    use flexdist_core::twodbc;

    #[test]
    fn gemm_volume_hand_count_2x2() {
        // 2x2 tiles on [0 1 / 2 3]: every A tile reaches 1 remote row
        // owner, every B tile 1 remote column owner, for each of 2 steps:
        // 2 * (4 + 4) ... each tile's receiver set has 2 owners incl. self.
        let a = TileAssignment::cyclic(&twodbc::two_dbc(2, 2), 2);
        let v = gemm_comm_volume(&a);
        assert_eq!(v.panel, 0);
        assert_eq!(v.trailing, 2 * (2 + 2));
    }

    #[test]
    fn gemm_estimate_matches_exact_on_square_grids() {
        // With t a multiple of the pattern and every row/col owner distinct,
        // the estimate is exact for 2DBC.
        for (r, c) in [(2usize, 2usize), (3, 2), (4, 4)] {
            let pat = twodbc::two_dbc(r, c);
            let t = 2 * r.max(c) * r.min(c);
            let a = TileAssignment::cyclic(&pat, t);
            let exact = gemm_comm_volume(&a).trailing as f64;
            let est = gemm_comm_estimate(&pat, t);
            assert!(
                (exact - est).abs() < 1e-9,
                "{r}x{c}: exact {exact} vs estimate {est}"
            );
        }
    }

    #[test]
    fn square_grid_minimizes_gemm_volume() {
        // The classical 2DBC optimality for matrix product (Irony et al.,
        // paper SII-A): among shapes of P = 16, the 4x4 grid sends least.
        let t = 32;
        let vols: Vec<u64> = [(16usize, 1usize), (8, 2), (4, 4)]
            .iter()
            .map(|&(r, c)| {
                gemm_comm_volume(&TileAssignment::cyclic(&twodbc::two_dbc(r, c), t)).total()
            })
            .collect();
        assert!(vols[2] < vols[1] && vols[1] < vols[0], "{vols:?}");
    }
}
