//! Mapping matrix tiles to nodes by cyclic pattern replication.

use flexdist_core::{NodeId, Pattern};

/// Owner map of a `t × t` tiled matrix: `owner(i, j)` is the node that
/// stores tile `(i, j)` and, under the owner-computes rule, performs every
/// task writing it.
///
/// Built from a [`Pattern`] by cyclic replication (`tile (i,j) → cell
/// (i mod r, j mod c)`). Patterns with undefined diagonal cells use the
/// *extended* assignment of paper §V: every tile landing on an undefined
/// cell is placed greedily on the least-loaded node among those already
/// present on the corresponding pattern colrow, so different replicas of
/// the same pattern cell may end up on different nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileAssignment {
    t: usize,
    n_nodes: u32,
    owners: Vec<NodeId>,
}

impl TileAssignment {
    /// Replicate a fully-defined pattern over a `t × t` tile grid.
    ///
    /// ```
    /// use flexdist_core::twodbc;
    /// use flexdist_dist::TileAssignment;
    ///
    /// let a = TileAssignment::cyclic(&twodbc::two_dbc(2, 3), 12);
    /// assert_eq!(a.owner(0, 0), 0);
    /// assert_eq!(a.owner(2, 3), 0); // wraps every 2 rows / 3 columns
    /// ```
    ///
    /// # Panics
    /// Panics if `t == 0` or if the pattern has undefined cells (use
    /// [`TileAssignment::extended`] for those).
    #[must_use]
    pub fn cyclic(pattern: &Pattern, t: usize) -> Self {
        assert!(t > 0, "matrix must have at least one tile");
        assert!(
            pattern.is_fully_defined(),
            "pattern has undefined cells; use TileAssignment::extended"
        );
        let mut owners = Vec::with_capacity(t * t);
        for i in 0..t {
            for j in 0..t {
                owners.push(pattern.tile_owner(i, j).expect("fully defined"));
            }
        }
        Self {
            t,
            n_nodes: pattern.n_nodes(),
            owners,
        }
    }

    /// Replicate a square pattern whose diagonal cells may be undefined
    /// (extended SBC / GCR&M). Tiles `(i, j)` with `i ≡ j (mod r)` map to a
    /// diagonal pattern cell; when that cell is undefined the tile is
    /// assigned to the least-loaded node among the nodes of pattern colrow
    /// `i mod r` (load counted over the lower triangle, since symmetric
    /// factorizations only store that half). The upper triangle mirrors the
    /// lower one so the full map stays symmetric.
    ///
    /// Fully-defined patterns pass through unchanged (identical to
    /// [`TileAssignment::cyclic`]).
    ///
    /// # Panics
    /// Panics if `t == 0`, the pattern is not square, or an undefined cell
    /// lies off the pattern diagonal.
    #[must_use]
    pub fn extended(pattern: &Pattern, t: usize) -> Self {
        assert!(t > 0, "matrix must have at least one tile");
        if pattern.is_fully_defined() {
            return Self::cyclic(pattern, t);
        }
        assert!(
            pattern.is_square(),
            "undefined cells are only supported in square patterns"
        );
        let r = pattern.rows();
        let n = pattern.n_nodes();
        // Node sets per pattern colrow, precomputed once.
        let colrow_nodes: Vec<Vec<NodeId>> = (0..r).map(|i| pattern.colrow_nodes(i)).collect();

        let mut owners = vec![NodeId::MAX; t * t];
        let mut loads = vec![0usize; n as usize];

        // First pass: defined cells of the lower triangle (i >= j).
        for i in 0..t {
            for j in 0..=i {
                if let Some(node) = pattern.tile_owner(i, j) {
                    owners[i * t + j] = node;
                    loads[node as usize] += 1;
                }
            }
        }
        // Second pass: undefined cells, greedily balanced. Row-major order
        // over the lower triangle, matching the paper's "successively
        // assigning undefined tiles to the least loaded node among those
        // present in the colrow".
        for i in 0..t {
            for j in 0..=i {
                if owners[i * t + j] == NodeId::MAX {
                    let cr = i % r;
                    debug_assert_eq!(cr, j % r, "undefined cells are diagonal");
                    let candidates = &colrow_nodes[cr];
                    assert!(
                        !candidates.is_empty(),
                        "pattern colrow {cr} has no defined node"
                    );
                    let node = *candidates
                        .iter()
                        .min_by_key(|&&c| loads[c as usize])
                        .expect("non-empty candidates");
                    owners[i * t + j] = node;
                    loads[node as usize] += 1;
                }
            }
        }
        // Mirror to the upper triangle.
        for i in 0..t {
            for j in (i + 1)..t {
                owners[i * t + j] = owners[j * t + i];
            }
        }
        Self {
            t,
            n_nodes: n,
            owners,
        }
    }

    /// Build an assignment from an arbitrary owner function (used by the
    /// heterogeneous rectangle-partition distributions of
    /// `flexdist-hetero`, which are not pattern-replications).
    ///
    /// # Panics
    /// Panics if `t == 0`, `n_nodes == 0`, or the function returns an id
    /// `>= n_nodes`.
    #[must_use]
    pub fn from_owner_fn(
        t: usize,
        n_nodes: u32,
        mut owner: impl FnMut(usize, usize) -> NodeId,
    ) -> Self {
        assert!(t > 0, "matrix must have at least one tile");
        assert!(n_nodes > 0, "need at least one node");
        let mut owners = Vec::with_capacity(t * t);
        for i in 0..t {
            for j in 0..t {
                let o = owner(i, j);
                assert!(o < n_nodes, "owner {o} out of range ({n_nodes})");
                owners.push(o);
            }
        }
        Self { t, n_nodes, owners }
    }

    /// Minimal-movement greedy re-map after the death of node `dead`:
    /// every tile the dead node owned is reassigned, in row-major order,
    /// to the currently least-loaded surviving node (load counted over
    /// the full square, ties to the lowest node id). All other tiles
    /// keep their owner, so no surviving data moves — the defining
    /// property that makes a P→P−1 re-map cheap for the any-P patterns
    /// where a fixed `r × c` grid would have to re-deal everything.
    ///
    /// The node count stays `n_nodes` (the dead node simply owns zero
    /// tiles), so rank ids of survivors are stable across the re-map.
    ///
    /// # Panics
    /// Panics if `dead >= n_nodes` or the assignment has fewer than two
    /// nodes (no survivor to take the tiles).
    #[must_use]
    pub fn remap_without(&self, dead: NodeId) -> Self {
        assert!(dead < self.n_nodes, "dead node {dead} out of range");
        assert!(self.n_nodes > 1, "no survivor to re-map onto");
        let mut loads = vec![0usize; self.n_nodes as usize];
        for &o in &self.owners {
            loads[o as usize] += 1;
        }
        let mut owners = self.owners.clone();
        for slot in &mut owners {
            if *slot != dead {
                continue;
            }
            let mut heir = if dead == 0 { 1 } else { 0 };
            for n in 0..self.n_nodes {
                if n != dead && loads[n as usize] < loads[heir as usize] {
                    heir = n;
                }
            }
            *slot = heir;
            loads[heir as usize] += 1;
        }
        Self {
            t: self.t,
            n_nodes: self.n_nodes,
            owners,
        }
    }

    /// Number of tiles per matrix dimension.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.t
    }

    /// Number of nodes.
    #[must_use]
    pub fn n_nodes(&self) -> u32 {
        self.n_nodes
    }

    /// Owner of tile `(i, j)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[must_use]
    pub fn owner(&self, i: usize, j: usize) -> NodeId {
        assert!(i < self.t && j < self.t, "tile ({i},{j}) out of bounds");
        self.owners[i * self.t + j]
    }

    /// Tiles owned by each node over the full square.
    #[must_use]
    pub fn tile_counts_full(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_nodes as usize];
        for &o in &self.owners {
            counts[o as usize] += 1;
        }
        counts
    }

    /// Tiles owned by each node over the lower triangle (`i >= j`), the
    /// relevant measure for symmetric factorizations.
    #[must_use]
    pub fn tile_counts_lower(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_nodes as usize];
        for i in 0..self.t {
            for j in 0..=i {
                counts[self.owners[i * self.t + j] as usize] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexdist_core::{g2dbc, gcrm, sbc, twodbc};

    #[test]
    fn cyclic_replication_wraps() {
        let pat = twodbc::two_dbc(2, 3);
        let a = TileAssignment::cyclic(&pat, 7);
        assert_eq!(a.owner(0, 0), 0);
        assert_eq!(a.owner(2, 3), 0);
        assert_eq!(a.owner(3, 5), 5);
        assert_eq!(a.owner(6, 6), a.owner(0, 0));
    }

    #[test]
    fn cyclic_full_counts_are_balanced_on_multiples() {
        let pat = twodbc::two_dbc(4, 4);
        let a = TileAssignment::cyclic(&pat, 16);
        let counts = a.tile_counts_full();
        assert!(counts.iter().all(|&c| c == 16), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn cyclic_rejects_undefined_patterns() {
        let pat = sbc::sbc_extended(21).unwrap();
        let _ = TileAssignment::cyclic(&pat, 10);
    }

    #[test]
    fn extended_fills_diagonal_cells_from_colrow() {
        let pat = sbc::sbc_extended(21).unwrap(); // 7x7, diagonal undefined
        let t = 35;
        let a = TileAssignment::extended(&pat, t);
        for i in 0..t {
            for j in 0..t {
                let o = a.owner(i, j);
                assert!(o < 21, "tile ({i},{j}) unassigned");
                if i % 7 == j % 7 {
                    // Tile maps to a diagonal pattern cell: its owner must
                    // come from the pattern colrow (the invariant that keeps
                    // the communication cost unchanged, paper §V).
                    let cr = pat.colrow_nodes(i % 7);
                    assert!(cr.contains(&o), "tile ({i},{j}) owner {o} not on colrow");
                }
            }
        }
    }

    #[test]
    fn extended_is_symmetric() {
        let pat = sbc::sbc_extended(28).unwrap();
        let a = TileAssignment::extended(&pat, 23);
        for i in 0..23 {
            for j in 0..23 {
                assert_eq!(a.owner(i, j), a.owner(j, i));
            }
        }
    }

    #[test]
    fn extended_balances_diagonal_load() {
        // With many replicas, the greedy diagonal placement keeps the lower
        // triangle load spread tight: max/min close to 1.
        let pat = sbc::sbc_extended(21).unwrap();
        let t = 70; // 10 pattern replicas per dimension
        let a = TileAssignment::extended(&pat, t);
        let counts = a.tile_counts_lower();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Lower triangle has t(t+1)/2 = 2485 tiles over 21 nodes ~ 118 each.
        assert!(
            max - min <= 12,
            "diagonal balancing too loose: {min}..{max} ({counts:?})"
        );
    }

    #[test]
    fn extended_on_defined_pattern_equals_cyclic() {
        let pat = g2dbc::g2dbc(10);
        let a = TileAssignment::extended(&pat, 12);
        let b = TileAssignment::cyclic(&pat, 12);
        assert_eq!(a, b);
    }

    #[test]
    fn extended_works_for_gcrm_patterns() {
        let pat = gcrm::run_once(13, 12, 7, gcrm::LoadMetric::Colrows).unwrap();
        let a = TileAssignment::extended(&pat, 30);
        let counts = a.tile_counts_lower();
        assert_eq!(counts.iter().sum::<usize>(), 30 * 31 / 2);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn owner_bounds_checked() {
        let pat = twodbc::two_dbc(2, 2);
        let a = TileAssignment::cyclic(&pat, 4);
        let _ = a.owner(4, 0);
    }

    #[test]
    fn remap_moves_only_the_dead_tiles() {
        let pat = g2dbc::g2dbc(5);
        let a = TileAssignment::cyclic(&pat, 9);
        for dead in 0..5 {
            let b = a.remap_without(dead);
            assert_eq!(b.tiles(), a.tiles());
            assert_eq!(b.n_nodes(), a.n_nodes());
            for i in 0..9 {
                for j in 0..9 {
                    let (o, n) = (a.owner(i, j), b.owner(i, j));
                    assert_ne!(n, dead, "tile ({i},{j}) still on dead node");
                    if o != dead {
                        assert_eq!(o, n, "surviving tile ({i},{j}) moved");
                    }
                }
            }
        }
    }

    #[test]
    fn remap_keeps_full_square_loads_balanced() {
        let pat = g2dbc::g2dbc(7);
        let a = TileAssignment::cyclic(&pat, 14);
        let b = a.remap_without(3);
        let counts = b.tile_counts_full();
        assert_eq!(counts[3], 0);
        let live: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|&(n, _)| n != 3)
            .map(|(_, &c)| c)
            .collect();
        let (max, min) = (live.iter().max().unwrap(), live.iter().min().unwrap());
        // 196 tiles over 6 survivors ~ 32.7 each; greedy refill stays tight.
        assert!(max - min <= 2, "re-map unbalanced: {counts:?}");
    }

    #[test]
    fn remap_is_deterministic() {
        let pat = sbc::sbc_extended(21).unwrap();
        let a = TileAssignment::extended(&pat, 12);
        assert_eq!(a.remap_without(20), a.remap_without(20));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn remap_rejects_unknown_node() {
        let a = TileAssignment::cyclic(&twodbc::two_dbc(2, 2), 4);
        let _ = a.remap_without(4);
    }

    #[test]
    #[should_panic(expected = "no survivor")]
    fn remap_rejects_single_node() {
        let a = TileAssignment::cyclic(&twodbc::two_dbc(1, 1), 4);
        let _ = a.remap_without(0);
    }
}
