//! Post-crash spliced broadcast streams: the Fig. 2 owner walks fused
//! across a crash point.
//!
//! When node `dead` dies at the start of epoch `e`, the run is a hybrid
//! of two assignments: everything the dead node finalized *before* `e`
//! was produced and broadcast under the original map `a`, while every
//! task at epoch `≥ e` — including the re-execution of the dead node's
//! lost tiles from their input values — runs under the re-mapped
//! survivor assignment `a2` (see [`TileAssignment::remap_without`]).
//!
//! This module computes the exact message stream of that hybrid run by
//! fusing the two walks tile by tile. It is the closed-form oracle the
//! executor's goodput accounting and the static protocol verifier are
//! both held to: the recovered run's wire volume must equal
//! [`SplicedVolume::total`] exactly, with the *extra* messages caused by
//! the re-map (and nothing else) flagged and counted in
//! [`SplicedVolume::recovered`].
//!
//! ## Fusion rules
//!
//! For a tile `(i,j)` broadcast at epoch `ℓ = min(i,j)`, with receiver
//! sets `Arec` under `a` and `A2rec` under `a2` (each excluding its own
//! sender, empty if the broadcast is elided):
//!
//! * `ℓ ≥ e` — the broadcast happens entirely after the crash: one
//!   message from the `a2` owner to `A2rec`. A send is *recovered* when
//!   it would not exist in a crash-free run: the tile was dead-owned
//!   (its owner changed), or the receiver reads it only under `a2` (a
//!   new owner of some re-assigned tile).
//! * `ℓ < e`, surviving owner — the owner broadcast to `Arec` before
//!   the crash (the dead node, if a reader, consumed its copy before
//!   dying); after the re-map it additionally serves the new readers
//!   `A2rec ∖ Arec`, which re-execute the dead node's updates. One
//!   message, `Arec` then the delta, delta flagged recovered.
//! * `ℓ < e`, dead owner — the dead node finalized and broadcast the
//!   tile before dying, *except* to the tile's new owner `s′ =
//!   a2.owner(i,j)`, which instead re-computes the tile locally (so a
//!   delivery would be an unexpected message under the strict
//!   protocol). Two messages: the dead node to `Arec ∖ {s′}`
//!   (pre-crash, not recovered), and `s′` to the new readers
//!   `A2rec ∖ Arec` (all recovered). Either is elided when empty.
//!
//! Exactly-once delivery per `(receiver, tile)` is preserved by
//! construction, and no message is addressed to the dead node after its
//! crash (it only appears inside `Arec` at epochs `< e`).

use crate::assignment::TileAssignment;
use crate::comm::CommBreakdown;
use crate::schedule::BcastClass;

/// One broadcast of the spliced (post-crash) schedule: a
/// [`BcastMsg`](crate::schedule::BcastMsg) plus a per-receiver flag
/// marking the sends that exist only because of the recovery re-map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplicedMsg {
    /// Panel or trailing leg.
    pub class: BcastClass,
    /// Sending node: the `a` owner for pre-crash messages, the `a2`
    /// owner for post-crash and re-serve messages.
    pub sender: u32,
    /// Tile row.
    pub i: usize,
    /// Tile column.
    pub j: usize,
    /// Iteration `ℓ = min(i, j)` of the broadcast.
    pub epoch: usize,
    /// Distinct receivers, never containing the sender, never empty.
    pub receivers: Vec<u32>,
    /// `recovered[k]` — the send to `receivers[k]` is extra work caused
    /// by the re-map (absent from the crash-free run under `a`).
    pub recovered: Vec<bool>,
}

/// Communication volume of a spliced run, split into the grand total
/// (what the recovered run's goodput must equal) and the recovered
/// portion (sends that exist only because of the re-map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplicedVolume {
    /// Every tile send of the spliced run, pre- and post-crash.
    pub total: CommBreakdown,
    /// The flagged subset: re-serves to new owners and re-mapped
    /// post-crash broadcasts that a crash-free run would not perform.
    pub recovered: CommBreakdown,
}

/// Fold a spliced stream into its total / recovered volumes.
#[must_use]
pub fn spliced_volume(msgs: &[SplicedMsg]) -> SplicedVolume {
    let mut out = SplicedVolume::default();
    for m in msgs {
        let n = m.receivers.len() as u64;
        let r = m.recovered.iter().filter(|&&f| f).count() as u64;
        match m.class {
            BcastClass::Panel => {
                out.total.panel += n;
                out.recovered.panel += r;
            }
            BcastClass::Trailing => {
                out.total.trailing += n;
                out.recovered.trailing += r;
            }
        }
    }
    out
}

/// Distinct-owner collector over reader-tile coordinates (stamp vector,
/// first-encounter order), mirroring the walk collectors in
/// [`crate::schedule`].
struct Distinct {
    stamp: Vec<u32>,
    current: u32,
}

impl Distinct {
    fn new(n_nodes: u32) -> Self {
        Self {
            stamp: vec![0; n_nodes as usize],
            current: 0,
        }
    }

    fn collect(&mut self, a: &TileAssignment, sender: u32, readers: &[(usize, usize)]) -> Vec<u32> {
        self.current += 1;
        self.stamp[sender as usize] = self.current;
        let mut out = Vec::new();
        for &(i, j) in readers {
            let node = a.owner(i, j);
            let s = &mut self.stamp[node as usize];
            if *s != self.current {
                *s = self.current;
                out.push(node);
            }
        }
        out
    }
}

/// Shared walk state: one collector per assignment.
struct Fuser<'x> {
    a: &'x TileAssignment,
    a2: &'x TileAssignment,
    dead: u32,
    epoch: usize,
    ca: Distinct,
    ca2: Distinct,
    out: Vec<SplicedMsg>,
}

impl Fuser<'_> {
    /// Fuse one broadcast slot of the walk (tile `(i,j)` at epoch
    /// `ℓ = min(i,j)` to the owners of `readers`) across the crash
    /// point, appending the resulting message(s).
    fn fuse(&mut self, class: BcastClass, i: usize, j: usize, readers: &[(usize, usize)]) {
        let l = i.min(j);
        let s = self.a.owner(i, j);
        let s2 = self.a2.owner(i, j);
        let arec = self.ca.collect(self.a, s, readers);
        let a2rec = self.ca2.collect(self.a2, s2, readers);
        let mut emit = |sender: u32, receivers: Vec<u32>, recovered: Vec<bool>| {
            if !receivers.is_empty() {
                self.out.push(SplicedMsg {
                    class,
                    sender,
                    i,
                    j,
                    epoch: l,
                    receivers,
                    recovered,
                });
            }
        };
        if l >= self.epoch {
            // Entirely post-crash: one broadcast under the re-map. A send
            // is recovered when the pair (sender → receiver) is absent
            // from the crash-free run: the tile changed owner, or the
            // receiver reads it only under the re-map.
            let flags = a2rec.iter().map(|r| s2 != s || !arec.contains(r)).collect();
            emit(s2, a2rec, flags);
        } else if s != self.dead {
            // Pre-crash broadcast from a survivor, extended with the
            // re-map's new readers.
            let mut receivers = arec.clone();
            let mut flags = vec![false; arec.len()];
            for &r in a2rec.iter().filter(|r| !arec.contains(r)) {
                receivers.push(r);
                flags.push(true);
            }
            emit(s, receivers, flags);
        } else {
            // Pre-crash broadcast from the dead node (everyone but the
            // tile's heir, which re-computes it locally), plus the heir
            // re-serving the re-map's new readers.
            let pre: Vec<u32> = arec.iter().copied().filter(|&r| r != s2).collect();
            let n_pre = pre.len();
            emit(s, pre, vec![false; n_pre]);
            let reserve: Vec<u32> = a2rec
                .iter()
                .copied()
                .filter(|r| !arec.contains(r))
                .collect();
            let n_res = reserve.len();
            emit(s2, reserve, vec![true; n_res]);
        }
    }
}

fn check_pair(a: &TileAssignment, a2: &TileAssignment, dead: u32) {
    assert_eq!(a.tiles(), a2.tiles(), "assignment shapes differ");
    assert_eq!(a.n_nodes(), a2.n_nodes(), "node counts differ");
    assert!(dead < a.n_nodes(), "dead node {dead} out of range");
}

/// The spliced LU broadcast stream: the walk of
/// [`lu_broadcasts`](crate::schedule::lu_broadcasts) fused across a
/// crash of node `dead` at the start of epoch `epoch`, with `a2` the
/// re-mapped survivor assignment. Pass `a2 = a` (and any `epoch`) for
/// an inactive recovery — the stream then equals the plain walk with
/// no recovered sends.
///
/// # Panics
/// Panics if `a` and `a2` disagree on shape or node count, or `dead`
/// is out of range.
#[must_use]
pub fn lu_spliced_broadcasts(
    a: &TileAssignment,
    a2: &TileAssignment,
    dead: u32,
    epoch: usize,
) -> Vec<SplicedMsg> {
    check_pair(a, a2, dead);
    let t = a.tiles();
    let mut f = Fuser {
        a,
        a2,
        dead,
        epoch,
        ca: Distinct::new(a.n_nodes()),
        ca2: Distinct::new(a.n_nodes()),
        out: Vec::new(),
    };
    for l in 0..t {
        let readers: Vec<(usize, usize)> = ((l + 1)..t).flat_map(|i| [(i, l), (l, i)]).collect();
        f.fuse(BcastClass::Panel, l, l, &readers);
        for i in (l + 1)..t {
            let readers: Vec<(usize, usize)> = ((l + 1)..t).map(|j| (i, j)).collect();
            f.fuse(BcastClass::Trailing, i, l, &readers);
        }
        for j in (l + 1)..t {
            let readers: Vec<(usize, usize)> = ((l + 1)..t).map(|i| (i, j)).collect();
            f.fuse(BcastClass::Trailing, l, j, &readers);
        }
    }
    f.out
}

/// The spliced Cholesky broadcast stream: the walk of
/// [`cholesky_broadcasts`](crate::schedule::cholesky_broadcasts) fused
/// across a crash of node `dead` at the start of epoch `epoch`.
///
/// # Panics
/// Panics if `a` and `a2` disagree on shape or node count, or `dead`
/// is out of range.
#[must_use]
pub fn cholesky_spliced_broadcasts(
    a: &TileAssignment,
    a2: &TileAssignment,
    dead: u32,
    epoch: usize,
) -> Vec<SplicedMsg> {
    check_pair(a, a2, dead);
    let t = a.tiles();
    let mut f = Fuser {
        a,
        a2,
        dead,
        epoch,
        ca: Distinct::new(a.n_nodes()),
        ca2: Distinct::new(a.n_nodes()),
        out: Vec::new(),
    };
    for l in 0..t {
        let readers: Vec<(usize, usize)> = ((l + 1)..t).map(|i| (i, l)).collect();
        f.fuse(BcastClass::Panel, l, l, &readers);
        for i in (l + 1)..t {
            let readers: Vec<(usize, usize)> = ((l + 1)..=i)
                .map(|j| (i, j))
                .chain(((i + 1)..t).map(|j| (j, i)))
                .collect();
            f.fuse(BcastClass::Trailing, i, l, &readers);
        }
    }
    f.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::{cholesky_comm_volume, lu_comm_volume};
    use crate::schedule::{cholesky_broadcasts, lu_broadcasts, BcastMsg};
    use flexdist_core::{g2dbc, sbc};

    fn g2dbc_assign(p: u32, t: usize) -> TileAssignment {
        TileAssignment::cyclic(&g2dbc::g2dbc(p), t)
    }

    fn to_plain(m: &SplicedMsg) -> BcastMsg {
        BcastMsg {
            class: m.class,
            sender: m.sender,
            i: m.i,
            j: m.j,
            epoch: m.epoch,
            receivers: m.receivers.clone(),
        }
    }

    #[test]
    fn identity_remap_reproduces_the_plain_walk() {
        // With a2 = a (inactive recovery) the spliced stream must equal
        // the plain walk exactly, at any crash epoch, with nothing
        // flagged recovered.
        let a = g2dbc_assign(5, 8);
        for e in [0usize, 3, 8, 99] {
            let s = lu_spliced_broadcasts(&a, &a, 2, e);
            let plain: Vec<BcastMsg> = lu_broadcasts(&a).collect();
            assert_eq!(s.iter().map(to_plain).collect::<Vec<_>>(), plain);
            assert!(s.iter().all(|m| m.recovered.iter().all(|&f| !f)));
            let v = spliced_volume(&s);
            assert_eq!(v.total, lu_comm_volume(&a));
            assert_eq!(v.recovered.total(), 0);
        }
    }

    #[test]
    fn crash_at_epoch_zero_runs_entirely_under_the_remap() {
        // e = 0: the dead node never executes anything, so the stream is
        // exactly the plain walk of the re-mapped assignment.
        let a = g2dbc_assign(6, 9);
        let a2 = a.remap_without(4);
        let s = cholesky_spliced_broadcasts(&a, &a2, 4, 0);
        let plain: Vec<BcastMsg> = cholesky_broadcasts(&a2).collect();
        assert_eq!(s.iter().map(to_plain).collect::<Vec<_>>(), plain);
        assert_eq!(spliced_volume(&s).total, cholesky_comm_volume(&a2));
        // Something must still be flagged: every broadcast of a tile
        // that used to be dead-owned is pure recovery traffic.
        assert!(spliced_volume(&s).recovered.total() > 0);
    }

    #[test]
    fn exactly_once_per_receiver_and_no_self_sends() {
        let a = g2dbc_assign(7, 10);
        let a2 = a.remap_without(3);
        for e in 0..10 {
            for s in [
                lu_spliced_broadcasts(&a, &a2, 3, e),
                cholesky_spliced_broadcasts(&a, &a2, 3, e),
            ] {
                let mut seen = std::collections::HashSet::new();
                for m in &s {
                    assert_eq!(m.receivers.len(), m.recovered.len());
                    assert!(!m.receivers.is_empty());
                    assert_eq!(m.epoch, m.i.min(m.j));
                    for (&r, &f) in m.receivers.iter().zip(&m.recovered) {
                        assert_ne!(r, m.sender, "self-send in {m:?}");
                        assert!(
                            seen.insert((m.i, m.j, r)),
                            "tile ({},{}) delivered twice to {r} (e={e})",
                            m.i,
                            m.j
                        );
                        if r == 3 {
                            // The dead node only ever receives pre-crash
                            // deliveries, never recovery traffic.
                            assert!(m.epoch < e, "post-crash send to dead: {m:?}");
                            assert!(!f, "recovered send to dead: {m:?}");
                        }
                    }
                }
                seen.clear();
            }
        }
    }

    #[test]
    fn dead_node_neither_sends_nor_receives_after_the_crash() {
        let a = g2dbc_assign(5, 8);
        let a2 = a.remap_without(0);
        for e in 0..8 {
            for m in lu_spliced_broadcasts(&a, &a2, 0, e) {
                if m.sender == 0 {
                    assert!(m.epoch < e, "dead sends post-crash: {m:?}");
                    assert!(m.recovered.iter().all(|&f| !f));
                }
            }
        }
    }

    #[test]
    fn recovered_flags_mark_exactly_the_delta_to_the_crash_free_run() {
        // Unflagged sends must be a sub-multiset of the crash-free walk's
        // (sender → receiver, tile) pairs; flagged sends must be absent
        // from it.
        let a = TileAssignment::extended(&sbc::sbc_extended(21).unwrap(), 9);
        let a2 = a.remap_without(7);
        let plain: std::collections::HashSet<(u32, u32, usize, usize)> = lu_broadcasts(&a)
            .flat_map(|m| {
                let s = m.sender;
                let (i, j) = (m.i, m.j);
                m.receivers.into_iter().map(move |r| (s, r, i, j))
            })
            .collect();
        for e in [2usize, 5] {
            for m in lu_spliced_broadcasts(&a, &a2, 7, e) {
                for (&r, &f) in m.receivers.iter().zip(&m.recovered) {
                    let key = (m.sender, r, m.i, m.j);
                    if f {
                        assert!(!plain.contains(&key), "flagged send exists plain: {key:?}");
                    } else {
                        assert!(plain.contains(&key), "unflagged send not plain: {key:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn every_reader_is_served_under_the_remap() {
        // Completeness: for every tile, every distinct remote a2-owner of
        // its reader set receives the tile exactly once — except the dead
        // node, which (post-crash) reads nothing.
        let a = g2dbc_assign(6, 8);
        let a2 = a.remap_without(5);
        let e = 4usize;
        let t = 8usize;
        let msgs = cholesky_spliced_broadcasts(&a, &a2, 5, e);
        let mut got: std::collections::HashMap<(usize, usize), Vec<u32>> =
            std::collections::HashMap::new();
        for m in &msgs {
            got.entry((m.i, m.j)).or_default().extend(&m.receivers);
        }
        for l in 0..t {
            for i in (l + 1)..t {
                // Trailing tile (i,l): a2-readers are owners of its colrow.
                let s2 = a2.owner(i, l);
                let mut need: Vec<u32> = ((l + 1)..=i)
                    .map(|j| a2.owner(i, j))
                    .chain(((i + 1)..t).map(|j| a2.owner(j, i)))
                    .filter(|&o| o != s2)
                    .collect();
                need.sort_unstable();
                need.dedup();
                let have = got.get(&(i, l)).cloned().unwrap_or_default();
                for o in need {
                    assert!(
                        have.contains(&o),
                        "a2-reader {o} of ({i},{l}) never served (e={e})"
                    );
                }
            }
        }
    }
}
