//! The paper's Fig. 2 broadcast walks as a reusable message stream.
//!
//! [`comm`](crate::comm) counts communication volume; this module yields
//! the **messages themselves**: for each factorization iteration, every
//! panel and trailing broadcast with its sender, tile, epoch, and the
//! distinct receiver set in first-encounter order. The volume counters
//! are reimplemented on top of this walk, so every exact-count and
//! hand-count test of `comm` doubles as a fidelity proof of the stream —
//! and the distributed executor (`flexdist-factor::dexec`) and the
//! static protocol verifier (`flexdist-verify::protocol`) both derive
//! their schedules from the identical owner walks.

use crate::assignment::TileAssignment;

/// Which leg of the per-iteration broadcast a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BcastClass {
    /// Factorized diagonal tile to the panel solvers (GETRF/POTRF
    /// output → TRSM inputs).
    Panel,
    /// Solved panel tile into the trailing submatrix (TRSM outputs →
    /// GEMM/SYRK inputs).
    Trailing,
}

/// One logical broadcast of the schedule: a tile leaving its owner for a
/// set of distinct remote nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BcastMsg {
    /// Panel or trailing leg.
    pub class: BcastClass,
    /// Owning (sending) node of the tile.
    pub sender: u32,
    /// Tile row.
    pub i: usize,
    /// Tile column.
    pub j: usize,
    /// Iteration `ℓ` at which the tile's final value is broadcast;
    /// always `min(i, j)` for the factorizations.
    pub epoch: usize,
    /// Distinct receiving nodes in first-encounter order of the owner
    /// walk, never containing the sender. Never empty: broadcasts whose
    /// receiver set collapses to the sender are elided from the stream.
    pub receivers: Vec<u32>,
}

/// Distinct-receiver collector (stamp vector keyed by node), keeping
/// the receivers in first-encounter order instead of only counting.
struct Collector {
    stamp: Vec<u32>,
    current: u32,
}

impl Collector {
    fn new(n_nodes: u32) -> Self {
        Self {
            stamp: vec![0; n_nodes as usize],
            current: 0,
        }
    }

    fn collect(&mut self, sender: u32, owners: impl Iterator<Item = u32>) -> Vec<u32> {
        self.current += 1;
        self.stamp[sender as usize] = self.current;
        let mut out = Vec::new();
        for node in owners {
            let s = &mut self.stamp[node as usize];
            if *s != self.current {
                *s = self.current;
                out.push(node);
            }
        }
        out
    }
}

fn push(
    msgs: &mut Vec<BcastMsg>,
    class: BcastClass,
    sender: u32,
    i: usize,
    j: usize,
    epoch: usize,
    receivers: Vec<u32>,
) {
    if !receivers.is_empty() {
        msgs.push(BcastMsg {
            class,
            sender,
            i,
            j,
            epoch,
            receivers,
        });
    }
}

/// Every broadcast of a right-looking tiled LU factorization, iteration
/// by iteration: the diagonal tile `(ℓ,ℓ)` to the distinct owners of its
/// panel (column tiles `(i,ℓ)` and row tiles `(ℓ,i)`, `i > ℓ`), then
/// each solved column tile `(i,ℓ)` across its trailing row and each row
/// tile `(ℓ,j)` down its trailing column.
pub fn lu_broadcasts(a: &TileAssignment) -> impl Iterator<Item = BcastMsg> + '_ {
    let t = a.tiles();
    (0..t).flat_map(move |l| {
        let mut rc = Collector::new(a.n_nodes());
        let mut msgs = Vec::new();
        let diag = a.owner(l, l);
        let recv = rc.collect(
            diag,
            ((l + 1)..t).flat_map(|i| [a.owner(i, l), a.owner(l, i)]),
        );
        push(&mut msgs, BcastClass::Panel, diag, l, l, l, recv);
        for i in (l + 1)..t {
            let sender = a.owner(i, l);
            let recv = rc.collect(sender, ((l + 1)..t).map(|j| a.owner(i, j)));
            push(&mut msgs, BcastClass::Trailing, sender, i, l, l, recv);
        }
        for j in (l + 1)..t {
            let sender = a.owner(l, j);
            let recv = rc.collect(sender, ((l + 1)..t).map(|i| a.owner(i, j)));
            push(&mut msgs, BcastClass::Trailing, sender, l, j, l, recv);
        }
        msgs.into_iter()
    })
}

/// Every broadcast of a right-looking tiled Cholesky factorization: the
/// diagonal tile `(ℓ,ℓ)` to the distinct owners of `(i,ℓ)`, `i > ℓ`,
/// then each solved tile `(i,ℓ)` to the distinct owners of its trailing
/// colrow — row tiles `(i,j)` for `ℓ < j ≤ i` and column tiles `(j,i)`
/// for `j > i`.
pub fn cholesky_broadcasts(a: &TileAssignment) -> impl Iterator<Item = BcastMsg> + '_ {
    let t = a.tiles();
    (0..t).flat_map(move |l| {
        let mut rc = Collector::new(a.n_nodes());
        let mut msgs = Vec::new();
        let diag = a.owner(l, l);
        let recv = rc.collect(diag, ((l + 1)..t).map(|i| a.owner(i, l)));
        push(&mut msgs, BcastClass::Panel, diag, l, l, l, recv);
        for i in (l + 1)..t {
            let sender = a.owner(i, l);
            let recv = rc.collect(
                sender,
                ((l + 1)..=i)
                    .map(|j| a.owner(i, j))
                    .chain(((i + 1)..t).map(|j| a.owner(j, i))),
            );
            push(&mut msgs, BcastClass::Trailing, sender, i, l, l, recv);
        }
        msgs.into_iter()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexdist_core::{g2dbc, twodbc, Pattern};

    fn anti_diag() -> TileAssignment {
        let pat = Pattern::from_rows(2, &[vec![Some(0), Some(1)], vec![Some(1), Some(0)]]);
        TileAssignment::cyclic(&pat, 2)
    }

    #[test]
    fn lu_walk_hand_count_2x2() {
        // Mirrors `two_tiles_two_nodes_lu_hand_count` message by message.
        let msgs: Vec<BcastMsg> = lu_broadcasts(&anti_diag()).collect();
        assert_eq!(msgs.len(), 3);
        assert_eq!(
            msgs[0],
            BcastMsg {
                class: BcastClass::Panel,
                sender: 0,
                i: 0,
                j: 0,
                epoch: 0,
                receivers: vec![1],
            }
        );
        assert_eq!(
            msgs[1],
            BcastMsg {
                class: BcastClass::Trailing,
                sender: 1,
                i: 1,
                j: 0,
                epoch: 0,
                receivers: vec![0],
            }
        );
        assert_eq!(
            msgs[2],
            BcastMsg {
                class: BcastClass::Trailing,
                sender: 1,
                i: 0,
                j: 1,
                epoch: 0,
                receivers: vec![0],
            }
        );
    }

    #[test]
    fn cholesky_walk_hand_count_2x2() {
        let msgs: Vec<BcastMsg> = cholesky_broadcasts(&anti_diag()).collect();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].class, BcastClass::Panel);
        assert_eq!((msgs[0].i, msgs[0].j), (0, 0));
        assert_eq!(msgs[1].class, BcastClass::Trailing);
        assert_eq!((msgs[1].i, msgs[1].j), (1, 0));
        assert_eq!(msgs[1].receivers, vec![0]);
    }

    #[test]
    fn receivers_are_distinct_and_never_the_sender() {
        let a = TileAssignment::cyclic(&g2dbc::g2dbc(7), 9);
        for m in lu_broadcasts(&a).chain(cholesky_broadcasts(&a)) {
            let mut seen = std::collections::HashSet::new();
            for &r in &m.receivers {
                assert_ne!(r, m.sender, "sender in receiver set of {m:?}");
                assert!(seen.insert(r), "duplicate receiver in {m:?}");
            }
            assert!(!m.receivers.is_empty());
            assert_eq!(m.epoch, m.i.min(m.j), "epoch invariant broken: {m:?}");
        }
    }

    #[test]
    fn every_tile_broadcast_at_most_once() {
        // A tile (i,j) leaves its owner exactly once, at epoch min(i,j).
        let a = TileAssignment::cyclic(&twodbc::two_dbc(3, 2), 8);
        let mut seen = std::collections::HashSet::new();
        for m in lu_broadcasts(&a) {
            assert!(seen.insert((m.i, m.j)), "tile ({},{}) sent twice", m.i, m.j);
        }
    }
}
