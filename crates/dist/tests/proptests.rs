//! Property-based tests of tile assignment and communication counting.

use flexdist_core::{cost, g2dbc, sbc, twodbc};
use flexdist_dist::comm::{cholesky_comm_estimate, lu_comm_estimate};
use flexdist_dist::{cholesky_comm_volume, lu_comm_volume, TileAssignment};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Eq. 1 is an over-approximation of the exact LU volume and converges
    /// from above (domain shrinking only removes sends).
    #[test]
    fn lu_estimate_overapproximates(r in 1usize..6, c in 1usize..6, mult in 2usize..8) {
        let pat = twodbc::two_dbc(r, c);
        let t = mult * r.max(c);
        let a = TileAssignment::cyclic(&pat, t);
        let exact = lu_comm_volume(&a).trailing as f64;
        let est = lu_comm_estimate(&pat, t);
        prop_assert!(est >= exact - 1e-6, "estimate {} < exact {}", est, exact);
    }

    /// Same for Cholesky (Eq. 2) over SBC patterns.
    #[test]
    fn cholesky_estimate_overapproximates(pick in 0usize..6, mult in 2usize..6) {
        let admissible = [3u32, 6, 8, 10, 15, 21];
        let p = admissible[pick];
        let pat = sbc::sbc_basic(p).unwrap();
        let t = mult * pat.rows();
        let a = TileAssignment::extended(&pat, t);
        let exact = cholesky_comm_volume(&a).trailing as f64;
        let est = cholesky_comm_estimate(&pat, t);
        prop_assert!(est >= exact - 1e-6, "estimate {} < exact {}", est, exact);
    }

    /// Extended assignment: tiles on diagonal pattern cells always land on
    /// a node of the corresponding pattern colrow, and the map is symmetric.
    #[test]
    fn extended_respects_colrows(pick in 0usize..5, t in 4usize..30) {
        let admissible = [6u32, 10, 15, 21, 28];
        let p = admissible[pick];
        let pat = sbc::sbc_extended(p).unwrap();
        let r = pat.rows();
        let a = TileAssignment::extended(&pat, t);
        for i in 0..t {
            for j in 0..t {
                prop_assert_eq!(a.owner(i, j), a.owner(j, i));
                if i % r == j % r {
                    let cr = pat.colrow_nodes(i % r);
                    prop_assert!(cr.contains(&a.owner(i, j)));
                } else {
                    prop_assert_eq!(Some(a.owner(i, j)), pat.tile_owner(i, j));
                }
            }
        }
    }

    /// Lower communication cost implies lower exact volume, across the
    /// 2DBC shape family at fixed P (monotonicity of Eq. 1 in T).
    #[test]
    fn cost_orders_volumes_within_2dbc_family(mult in 3usize..8) {
        let shapes = [(12usize, 1usize), (6, 2), (4, 3)];
        let t = 12 * mult;
        let mut last: Option<(f64, u64)> = None;
        for (r, c) in shapes {
            let pat = twodbc::two_dbc(r, c);
            let vol = lu_comm_volume(&TileAssignment::cyclic(&pat, t)).trailing;
            let tc = cost::lu_cost(&pat);
            if let Some((pt, pv)) = last {
                // Strictly smaller cost => strictly smaller volume.
                if tc < pt {
                    prop_assert!(vol < pv, "T {} < {} but volume {} >= {}", tc, pt, vol, pv);
                }
            }
            last = Some((tc, vol));
        }
    }

    /// Full tile counts are exactly balanced whenever t is a multiple of
    /// both pattern dimensions (each replica contributes one full pattern).
    #[test]
    fn cyclic_balance_on_multiples(p in 2u32..60, mult in 1usize..4) {
        let pat = g2dbc::g2dbc(p);
        let t_lcm = flexdist_core::cost::lcm(pat.rows(), pat.cols());
        prop_assume!(t_lcm * mult <= 400);
        let a = TileAssignment::cyclic(&pat, t_lcm * mult);
        let counts = a.tile_counts_full();
        let first = counts[0];
        prop_assert!(counts.iter().all(|&ct| ct == first), "{:?}", counts);
    }

    /// Panel volume is always dominated by trailing volume for big enough
    /// matrices (the paper's justification for dropping it from Eq. 1/2).
    #[test]
    fn panel_term_is_lower_order(p in 4u32..40, mult in 4usize..8) {
        let pat = g2dbc::g2dbc(p);
        let t = pat.rows().max(pat.cols()) * mult / 2;
        prop_assume!((8..=220).contains(&t));
        let a = TileAssignment::cyclic(&pat, t);
        let v = lu_comm_volume(&a);
        prop_assert!(v.panel <= v.trailing,
            "panel {} > trailing {} at t = {}", v.panel, v.trailing, t);
    }
}
