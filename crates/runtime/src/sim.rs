//! Discrete-event simulation of a task graph on a cluster.
//!
//! Machine model (per [`MachineConfig`]):
//!
//! * each node runs `workers_per_node` identical worker cores; a ready task
//!   occupies one core for its declared duration;
//! * each node has one send port and one receive port; a tile transfer
//!   occupies the source's send port and the destination's receive port for
//!   `latency + bytes/bandwidth` seconds (store-and-forward, ports
//!   serialize), fully overlapped with computation — matching the paper's
//!   observation that Chameleon/StarPU overlaps its point-to-point MPI
//!   messages with kernels (§II-C);
//! * a task becomes *runnable* once its dependencies are done **and** all
//!   its read data are resident on its node; missing tiles are fetched from
//!   the current holder (the last writer's node);
//! * with the replica cache enabled, a received tile stays valid on the node
//!   until the tile is next written (StarPU's data replication), so each
//!   tile version is sent at most once per consuming node — the property
//!   that makes the number of messages proportional to the paper's
//!   communication volume metric.
//!
//! The simulator is deterministic: event ties are broken by a monotonic
//! sequence number and ready-queue ties by submission order.

use crate::config::{MachineConfig, SchedulerPolicy};
use crate::graph::TaskGraph;
use crate::report::SimReport;
use crate::{DataId, NodeId, TaskId};
use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};

/// One executed task in a simulation trace (a Paje-like span).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Node it ran on.
    pub node: NodeId,
    /// Worker slot within the node (`0..workers_of(node)`).
    pub worker: u32,
    /// Kernel label of the task (e.g. `"getrf"`).
    pub label: &'static str,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// Totally ordered wrapper for simulation timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    TaskDone(TaskId),
    TransferDone(DataId, NodeId),
}

/// Bitset over nodes (replica sets). Sized for arbitrary `P`.
#[derive(Debug, Clone)]
struct NodeSetMask {
    words: Vec<u64>,
}

impl NodeSetMask {
    fn new(n_nodes: u32) -> Self {
        Self {
            words: vec![0; (n_nodes as usize).div_ceil(64)],
        }
    }

    fn contains(&self, n: NodeId) -> bool {
        self.words[n as usize / 64] & (1u64 << (n % 64)) != 0
    }

    fn insert(&mut self, n: NodeId) {
        self.words[n as usize / 64] |= 1u64 << (n % 64);
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterate over the member node ids.
    fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                Some((wi * 64) as NodeId + b)
            })
        })
    }
}

struct SimState<'g> {
    graph: &'g TaskGraph,
    config: &'g MachineConfig,
    now: f64,
    events: BinaryHeap<Reverse<(Time, u64, EventKey)>>,
    seq: u64,
    // Per task.
    deps_left: Vec<u32>,
    fetches_left: Vec<u32>,
    /// Worker slot each task ran on (filled at dispatch).
    slot_of: Vec<u32>,
    // Per node.
    /// Stack of idle worker slot ids per node.
    idle_slots: Vec<Vec<u32>>,
    ready: Vec<BinaryHeap<(i64, Reverse<TaskId>)>>,
    /// Peak ready-queue length observed per node.
    peak_ready: Vec<usize>,
    out_free: Vec<f64>,
    in_free: Vec<f64>,
    busy: Vec<f64>,
    // Per datum.
    holder: Vec<NodeId>,
    replicas: Vec<NodeSetMask>,
    in_flight: HashMap<(DataId, NodeId), Vec<TaskId>>,
    /// Nodes whose ready queue or worker pool changed since the last
    /// dispatch pass. Dispatch is deferred to the end of each event batch so
    /// that tasks becoming ready at the same timestamp compete by priority
    /// rather than by enqueue order.
    dirty_nodes: Vec<usize>,
    /// Monotonic counter stamping ready-queue insertions (LIFO policy).
    ready_seq: i64,
    /// Optional execution trace (one span per task).
    trace: Option<Vec<TaskSpan>>,
    /// Currently resident bytes per node (home data + valid replicas).
    mem_now: Vec<u64>,
    /// High-water mark of `mem_now`.
    mem_peak: Vec<u64>,
    /// `AnyReplica` mode: destinations waiting for a free source, per datum
    /// (BTreeMap for deterministic pump order).
    pending_dests: std::collections::BTreeMap<DataId, std::collections::VecDeque<NodeId>>,
    // Stats.
    messages: u64,
    bytes: u64,
    completed: usize,
    makespan: f64,
}

/// Compact encoding of [`Event`] so the heap entry stays `Copy + Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey(u64);

impl EventKey {
    fn task(t: TaskId) -> Self {
        Self(u64::from(t))
    }

    fn transfer(d: DataId, n: NodeId) -> Self {
        debug_assert!(n < (1 << 24), "node id exceeds event encoding");
        Self(1 << 63 | u64::from(d) << 24 | u64::from(n))
    }

    fn decode(self) -> Event {
        if self.0 >> 63 == 1 {
            let payload = self.0 & !(1 << 63);
            Event::TransferDone((payload >> 24) as DataId, (payload & 0xFF_FFFF) as NodeId)
        } else {
            Event::TaskDone(self.0 as TaskId)
        }
    }
}

/// Simulate `graph` on `config`'s machine. Returns the execution report.
///
/// # Panics
/// Panics if a task or datum references a node `>= config.nodes`, or if the
/// graph deadlocks (impossible for graphs built by [`crate::GraphBuilder`],
/// whose dependencies always point backwards in submission order).
#[must_use]
pub fn simulate(graph: &TaskGraph, config: &MachineConfig) -> SimReport {
    simulate_inner(graph, config, false).0
}

/// Like [`simulate`], but also returns the per-task execution trace
/// (a [`TaskSpan`] for every task, in completion order).
///
/// # Panics
/// Same conditions as [`simulate`].
#[must_use]
pub fn simulate_traced(graph: &TaskGraph, config: &MachineConfig) -> (SimReport, Vec<TaskSpan>) {
    let (report, trace) = simulate_inner(graph, config, true);
    (report, trace.expect("tracing was requested"))
}

fn simulate_inner(
    graph: &TaskGraph,
    config: &MachineConfig,
    traced: bool,
) -> (SimReport, Option<Vec<TaskSpan>>) {
    let n_nodes = config.nodes as usize;
    assert!(n_nodes > 0, "machine must have at least one node");
    for t in &graph.tasks {
        assert!((t.node as usize) < n_nodes, "task node out of range");
    }
    for &o in &graph.data_owner {
        assert!((o as usize) < n_nodes, "data owner out of range");
    }

    let n_tasks = graph.tasks.len();
    let mut st = SimState {
        graph,
        config,
        now: 0.0,
        events: BinaryHeap::new(),
        seq: 0,
        deps_left: graph.tasks.iter().map(|t| t.n_deps).collect(),
        fetches_left: vec![0; n_tasks],
        slot_of: vec![0; n_tasks],
        // Reversed so the owner pops slot 0 first.
        idle_slots: (0..config.nodes)
            .map(|n| (0..config.workers_of(n)).rev().collect())
            .collect(),
        ready: (0..n_nodes).map(|_| BinaryHeap::new()).collect(),
        peak_ready: vec![0; n_nodes],
        out_free: vec![0.0; n_nodes],
        in_free: vec![0.0; n_nodes],
        busy: vec![0.0; n_nodes],
        holder: graph.data_owner.clone(),
        replicas: graph
            .data_owner
            .iter()
            .map(|&o| {
                let mut m = NodeSetMask::new(config.nodes);
                m.insert(o);
                m
            })
            .collect(),
        in_flight: HashMap::new(),
        dirty_nodes: Vec::new(),
        ready_seq: 0,
        trace: traced.then(|| Vec::with_capacity(n_tasks)),
        mem_now: {
            let mut mem = vec![0u64; n_nodes];
            for (d, &o) in graph.data_owner.iter().enumerate() {
                mem[o as usize] += graph.data_bytes[d];
            }
            mem
        },
        mem_peak: Vec::new(),
        pending_dests: std::collections::BTreeMap::new(),
        messages: 0,
        bytes: 0,
        completed: 0,
        makespan: 0.0,
    };
    st.mem_peak = st.mem_now.clone();

    // Seed: tasks with no dependencies request their inputs.
    for id in 0..n_tasks as TaskId {
        if st.deps_left[id as usize] == 0 {
            st.request_inputs(id);
        }
    }
    st.dispatch_dirty();

    while let Some(Reverse((Time(t), _, key))) = st.events.pop() {
        st.now = t;
        st.makespan = st.makespan.max(t);
        match key.decode() {
            Event::TaskDone(id) => st.on_task_done(id),
            Event::TransferDone(d, n) => st.on_transfer_done(d, n),
        }
        // Drain every event sharing this timestamp before dispatching, so
        // simultaneous completions release their successors together.
        while let Some(Reverse((Time(t2), _, _))) = st.events.peek().copied() {
            if t2 > t {
                break;
            }
            let Reverse((_, _, key2)) = st.events.pop().expect("peeked");
            match key2.decode() {
                Event::TaskDone(id) => st.on_task_done(id),
                Event::TransferDone(d, n) => st.on_transfer_done(d, n),
            }
        }
        st.dispatch_dirty();
    }

    assert_eq!(
        st.completed, n_tasks,
        "simulation finished with {} of {} tasks executed (deadlock?)",
        st.completed, n_tasks
    );

    let idle_per_node: Vec<f64> = st
        .busy
        .iter()
        .enumerate()
        .map(|(n, &busy)| (st.makespan * f64::from(config.workers_of(n as NodeId)) - busy).max(0.0))
        .collect();
    let report = SimReport {
        makespan: st.makespan,
        total_flops: graph.total_flops(),
        messages: st.messages,
        bytes_sent: st.bytes,
        busy_per_node: st.busy,
        peak_memory_per_node: st.mem_peak,
        tasks: n_tasks,
        total_workers: config.total_workers(),
        peak_ready_per_node: st.peak_ready,
        idle_per_node,
    };
    (report, st.trace)
}

impl SimState<'_> {
    fn push_event(&mut self, at: f64, key: EventKey) {
        self.seq += 1;
        self.events.push(Reverse((Time(at), self.seq, key)));
    }

    /// All dependencies of `id` are satisfied: fetch missing read data, then
    /// (possibly immediately) mark ready.
    fn request_inputs(&mut self, id: TaskId) {
        let task = &self.graph.tasks[id as usize];
        let node = task.node;
        let mut pending = 0u32;
        for &d in &task.reads {
            if self.replicas[d as usize].contains(node) {
                continue;
            }
            pending += 1;
            match self.in_flight.entry((d, node)) {
                Entry::Occupied(mut e) if self.config.replica_cache => {
                    // A transfer of this tile to this node is already on the
                    // wire (or queued); piggyback on it.
                    e.get_mut().push(id);
                }
                entry => {
                    // Either nothing in flight, or caching is disabled (each
                    // consumer pays its own message).
                    match entry {
                        Entry::Occupied(mut e) => e.get_mut().push(id),
                        Entry::Vacant(v) => {
                            v.insert(vec![id]);
                        }
                    }
                    match self.config.source_selection {
                        crate::config::SourceSelection::Holder => {
                            let src = self.holder[d as usize];
                            self.schedule_transfer(src, d, node);
                        }
                        crate::config::SourceSelection::AnyReplica => {
                            assert!(
                                self.config.replica_cache,
                                "AnyReplica sourcing requires the replica cache"
                            );
                            // Defer: the transfer starts when some replica
                            // holder's send port is free, so later requests
                            // can relay from earlier receivers (binomial-
                            // tree-like broadcast).
                            self.pending_dests.entry(d).or_default().push_back(node);
                        }
                    }
                }
            }
        }
        if pending == 0 {
            self.mark_ready(id);
        } else {
            self.fetches_left[id as usize] = pending;
            if self.config.source_selection == crate::config::SourceSelection::AnyReplica {
                self.pump_pending_transfers();
            }
        }
    }

    /// Reserve ports and schedule the completion event of one transfer.
    fn schedule_transfer(&mut self, src: NodeId, d: DataId, dst: NodeId) {
        let bytes = self.graph.data_bytes[d as usize];
        let start = self
            .now
            .max(self.out_free[src as usize])
            .max(self.in_free[dst as usize]);
        let end = start + self.config.transfer_time(bytes);
        self.out_free[src as usize] = end;
        self.in_free[dst as usize] = end;
        self.messages += 1;
        self.bytes += bytes;
        self.push_event(end, EventKey::transfer(d, dst));
    }

    /// `AnyReplica` mode: start queued transfers whose datum has a replica
    /// holder with a currently-free send port. Called whenever time
    /// advances past a transfer completion (new replica and/or freed port).
    fn pump_pending_transfers(&mut self) {
        let data: Vec<DataId> = self.pending_dests.keys().copied().collect();
        for d in data {
            while let Some(queue) = self.pending_dests.get_mut(&d) {
                if queue.is_empty() {
                    self.pending_dests.remove(&d);
                    break;
                }
                // A source is usable when it holds the replica and its send
                // port is free now.
                let src = self.replicas[d as usize]
                    .iter()
                    .find(|&s| self.out_free[s as usize] <= self.now);
                let Some(src) = src else {
                    break;
                };
                let dst = self
                    .pending_dests
                    .get_mut(&d)
                    .expect("checked")
                    .pop_front()
                    .expect("non-empty");
                self.schedule_transfer(src, d, dst);
            }
        }
        self.pending_dests.retain(|_, q| !q.is_empty());
    }

    fn on_transfer_done(&mut self, d: DataId, node: NodeId) {
        if self.config.replica_cache {
            if !self.replicas[d as usize].contains(node) {
                self.replicas[d as usize].insert(node);
                self.add_memory(node, self.graph.data_bytes[d as usize]);
            }
        } else {
            // Uncached transfers still occupy the consumer transiently;
            // count the high-water mark as if held for the reading task.
            self.add_memory(node, self.graph.data_bytes[d as usize]);
            self.mem_now[node as usize] -= self.graph.data_bytes[d as usize];
        }
        if self.config.source_selection == crate::config::SourceSelection::AnyReplica {
            // A port just freed and a new replica exists: restart the pump.
            self.pump_pending_transfers();
        }
        let waiters = self.in_flight.remove(&(d, node)).unwrap_or_default();
        if !self.config.replica_cache {
            // Without caching, transfers were scheduled one per waiter but
            // share the event key; wake exactly one waiter per event.
            // (Each waiter scheduled its own TransferDone, so waking the
            // first pending one keeps the accounting exact.)
            let mut waiters = waiters;
            if let Some(w) = waiters.pop() {
                if !waiters.is_empty() {
                    self.in_flight.insert((d, node), waiters);
                }
                self.finish_fetch(w);
            }
            return;
        }
        for w in waiters {
            self.finish_fetch(w);
        }
    }

    fn add_memory(&mut self, node: NodeId, bytes: u64) {
        let slot = &mut self.mem_now[node as usize];
        *slot += bytes;
        let peak = &mut self.mem_peak[node as usize];
        if *slot > *peak {
            *peak = *slot;
        }
    }

    fn finish_fetch(&mut self, id: TaskId) {
        let left = &mut self.fetches_left[id as usize];
        debug_assert!(*left > 0);
        *left -= 1;
        if *left == 0 {
            self.mark_ready(id);
        }
    }

    fn mark_ready(&mut self, id: TaskId) {
        let task = &self.graph.tasks[id as usize];
        let node = task.node as usize;
        // The heap pops its maximum key; encode the policy into the key.
        let key = match self.config.scheduler {
            SchedulerPolicy::Priority => task.priority,
            SchedulerPolicy::Fifo => 0,
            SchedulerPolicy::Lifo => {
                self.ready_seq += 1;
                self.ready_seq
            }
        };
        self.ready[node].push((key, Reverse(id)));
        self.peak_ready[node] = self.peak_ready[node].max(self.ready[node].len());
        self.dirty_nodes.push(node);
    }

    fn dispatch_dirty(&mut self) {
        while let Some(node) = self.dirty_nodes.pop() {
            self.dispatch(node);
        }
    }

    fn dispatch(&mut self, node: usize) {
        while !self.idle_slots[node].is_empty() {
            let Some((_, Reverse(id))) = self.ready[node].pop() else {
                break;
            };
            let slot = self.idle_slots[node].pop().expect("checked non-empty");
            self.slot_of[id as usize] = slot;
            let dur = self.graph.tasks[id as usize].duration;
            self.busy[node] += dur;
            if let Some(trace) = &mut self.trace {
                trace.push(TaskSpan {
                    task: id,
                    node: node as NodeId,
                    worker: slot,
                    label: self.graph.tasks[id as usize].label,
                    start: self.now,
                    end: self.now + dur,
                });
            }
            self.push_event(self.now + dur, EventKey::task(id));
        }
    }

    fn on_task_done(&mut self, id: TaskId) {
        self.completed += 1;
        let node = self.graph.tasks[id as usize].node as usize;
        self.idle_slots[node].push(self.slot_of[id as usize]);
        // Writes create a new version: the writer's node becomes the only
        // holder; cached replicas elsewhere are invalidated (freeing their
        // memory).
        for wi in 0..self.graph.tasks[id as usize].writes.len() {
            let d = self.graph.tasks[id as usize].writes[wi];
            let bytes = self.graph.data_bytes[d as usize];
            let mut writer_had_it = false;
            let evicted: Vec<NodeId> = self.replicas[d as usize].iter().collect();
            for n2 in evicted {
                if n2 as usize == node {
                    writer_had_it = true;
                } else {
                    self.mem_now[n2 as usize] -= bytes;
                }
            }
            self.holder[d as usize] = node as NodeId;
            self.replicas[d as usize].clear();
            self.replicas[d as usize].insert(node as NodeId);
            if !writer_had_it {
                self.add_memory(node as NodeId, bytes);
            }
        }
        for si in 0..self.graph.tasks[id as usize].successors.len() {
            let s = self.graph.tasks[id as usize].successors[si];
            let left = &mut self.deps_left[s as usize];
            debug_assert!(*left > 0);
            *left -= 1;
            if *left == 0 {
                self.request_inputs(s);
            }
        }
        self.dirty_nodes.push(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: duration * 1e9,
            priority: 0,
            label: "k",
            accesses,
        }
    }

    fn machine(nodes: u32, workers: u32) -> MachineConfig {
        let mut m = MachineConfig::test_machine(nodes, workers);
        m.latency = 0.0;
        m.bandwidth = 1e9;
        m
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let r = simulate(&g, &machine(2, 2));
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.tasks, 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn sequential_chain_time_adds_up() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for _ in 0..5 {
            b.submit(spec(0, 1.0, vec![Access::read_write(d)]));
        }
        let g = b.build();
        let r = simulate(&g, &machine(1, 4));
        assert!((r.makespan - 5.0).abs() < 1e-12);
        assert_eq!(r.messages, 0);
        assert!((r.busy_per_node[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            let d = b.add_data(0, 8);
            b.submit(spec(0, 1.0, vec![Access::write(d)]));
        }
        let g = b.build();
        // 4 workers: all at once.
        assert!((simulate(&g, &machine(1, 4)).makespan - 1.0).abs() < 1e-12);
        // 2 workers: two waves.
        assert!((simulate(&g, &machine(1, 2)).makespan - 2.0).abs() < 1e-12);
        // 1 worker: serial.
        assert!((simulate(&g, &machine(1, 1)).makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn remote_read_costs_one_message() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        b.submit(spec(1, 1.0, vec![Access::read(d)]));
        let g = b.build();
        let m = machine(2, 1);
        let r = simulate(&g, &m);
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes_sent, 1000);
        // write (1.0) + transfer (1000 / 1e9 s) + read (1.0).
        let expect = 1.0 + 1000.0 / 1e9 + 1.0;
        assert!((r.makespan - expect).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn replica_cache_dedups_messages() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        // Three readers on the same remote node: one message with cache.
        let e1 = b.add_data(1, 8);
        let e2 = b.add_data(1, 8);
        let e3 = b.add_data(1, 8);
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(e1)]));
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(e2)]));
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(e3)]));
        let g = b.build();

        let cached = simulate(&g, &machine(2, 1));
        assert_eq!(cached.messages, 1);

        let mut nocache = machine(2, 1);
        nocache.replica_cache = false;
        let r = simulate(&g, &nocache);
        assert_eq!(r.messages, 3, "without cache each reader fetches");
    }

    #[test]
    fn write_invalidates_replicas() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        let s1 = b.add_data(1, 8);
        let s2 = b.add_data(1, 8);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(s1)]));
        //

        b.submit(spec(0, 1.0, vec![Access::read_write(d)])); // new version
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(s2)]));
        let g = b.build();
        let r = simulate(&g, &machine(2, 1));
        // Node 1 must fetch d twice: once per version.
        assert_eq!(r.messages, 2);
    }

    #[test]
    fn owner_does_not_fetch_its_own_data() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(1, 1000);
        b.submit(spec(1, 1.0, vec![Access::read(d)]));
        let g = b.build();
        let r = simulate(&g, &machine(2, 1));
        assert_eq!(r.messages, 0);
        assert!((r.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_serializes_on_send_port() {
        // One producer node sends two different tiles to two different
        // consumers; the shared send port serializes the transfers.
        let mut b = GraphBuilder::new();
        let d1 = b.add_data(0, 1_000_000_000); // 1 s at 1 GB/s
        let d2 = b.add_data(0, 1_000_000_000);
        b.submit(spec(1, 0.0, vec![Access::read(d1)]));
        b.submit(spec(2, 0.0, vec![Access::read(d2)]));
        let g = b.build();
        let r = simulate(&g, &machine(3, 1));
        assert_eq!(r.messages, 2);
        // Transfers can't overlap on node 0's out port: makespan ~ 2 s.
        assert!((r.makespan - 2.0).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn priorities_order_ready_tasks() {
        let mut b = GraphBuilder::new();
        let lo = b.add_data(0, 8);
        let hi = b.add_data(0, 8);
        let mut s_lo = spec(0, 1.0, vec![Access::write(lo)]);
        s_lo.priority = 0;
        let mut s_hi = spec(0, 1.0, vec![Access::write(hi)]);
        s_hi.priority = 10;
        b.submit(s_lo);
        b.submit(s_hi);
        // A reader of `hi` on another node: if `hi` runs first, its result
        // ships while `lo` computes, shortening the makespan.
        b.submit(spec(1, 1.0, vec![Access::read(hi)]));
        let g = b.build();
        let r = simulate(&g, &machine(2, 1));
        // hi at [0,1], transfer ~8ns, reader at [~1, ~2]; lo at [1,2].
        assert!(r.makespan < 2.5, "{}", r.makespan);
    }

    #[test]
    fn simulation_is_deterministic() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new();
        let data: Vec<_> = (0..20).map(|i| b.add_data(i % 3, 5000)).collect();
        for _ in 0..200 {
            let d = data[rng.gen_range(0..20usize)];
            let e = data[rng.gen_range(0..20usize)];
            let node = rng.gen_range(0..3);
            let mut acc = vec![Access::read(d)];
            if e != d {
                acc.push(Access::read_write(e));
            }
            b.submit(spec(node, rng.gen_range(0.001..0.01), acc));
        }
        let g = b.build();
        let m = machine(3, 2);
        let r1 = simulate(&g, &m);
        let r2 = simulate(&g, &m);
        assert_eq!(r1, r2);
        assert_eq!(r1.tasks, 200);
        // Makespan is bounded below by the critical path.
        assert!(r1.makespan >= g.critical_path() - 1e-9);
    }

    #[test]
    fn makespan_at_least_critical_path_and_work_bound() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for i in 0..6 {
            b.submit(spec(i % 2, 1.0, vec![Access::read_write(d)]));
        }
        let g = b.build();
        let m = machine(2, 1);
        let r = simulate(&g, &m);
        assert!(r.makespan >= g.critical_path() - 1e-9);
        assert!(r.makespan >= g.sequential_time() / 2.0 - 1e-9);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::SchedulerPolicy;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, priority: i64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: 0.0,
            priority,
            label: "k",
            accesses,
        }
    }

    fn one_node_machine(policy: SchedulerPolicy) -> MachineConfig {
        let mut m = MachineConfig::test_machine(1, 1);
        m.scheduler = policy;
        m
    }

    /// Three independent tasks with priorities 1, 3, 2 on a single worker.
    fn priority_graph() -> TaskGraph {
        let mut b = GraphBuilder::new();
        for p in [1i64, 3, 2] {
            let d = b.add_data(0, 8);
            b.submit(spec(0, 1.0, p, vec![Access::write(d)]));
        }
        b.build()
    }

    #[test]
    fn priority_policy_runs_high_priority_first() {
        let g = priority_graph();
        let (_, trace) = simulate_traced(&g, &one_node_machine(SchedulerPolicy::Priority));
        let order: Vec<TaskId> = trace.iter().map(|s| s.task).collect();
        assert_eq!(order, vec![1, 2, 0], "highest priority first");
    }

    #[test]
    fn fifo_policy_runs_in_submission_order() {
        let g = priority_graph();
        let (_, trace) = simulate_traced(&g, &one_node_machine(SchedulerPolicy::Fifo));
        let order: Vec<TaskId> = trace.iter().map(|s| s.task).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn lifo_policy_runs_most_recent_first() {
        let g = priority_graph();
        let (_, trace) = simulate_traced(&g, &one_node_machine(SchedulerPolicy::Lifo));
        let order: Vec<TaskId> = trace.iter().map(|s| s.task).collect();
        // All three become ready together at t = 0 in submission order, so
        // LIFO pops the last submitted first.
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn trace_spans_are_consistent() {
        // Random-ish graph; validate span invariants:
        // one span per task, end = start + duration, no worker
        // over-subscription on any node.
        let mut b = GraphBuilder::new();
        let d: Vec<_> = (0..4).map(|i| b.add_data(i % 2, 64)).collect();
        for i in 0..30usize {
            b.submit(spec(
                (i % 2) as NodeId,
                0.5 + (i % 3) as f64 * 0.25,
                0,
                vec![Access::read(d[i % 4]), Access::read_write(d[(i + 1) % 4])],
            ));
        }
        let g = b.build();
        let workers = 2u32;
        let (report, trace) = simulate_traced(&g, &MachineConfig::test_machine(2, workers));
        assert_eq!(trace.len(), g.n_tasks());
        let mut seen = vec![false; g.n_tasks()];
        for span in &trace {
            assert!(!seen[span.task as usize], "duplicate span");
            seen[span.task as usize] = true;
            assert!(span.end <= report.makespan + 1e-12);
            assert!(span.start >= 0.0);
        }
        // Over-subscription check: at each span start, count overlapping
        // spans on the same node.
        for s in &trace {
            let overlapping = trace
                .iter()
                .filter(|o| o.node == s.node && o.start < s.end - 1e-15 && s.start < o.end - 1e-15)
                .count();
            assert!(
                overlapping <= workers as usize,
                "node {} runs {} tasks concurrently",
                s.node,
                overlapping
            );
        }
    }

    #[test]
    fn traced_report_equals_untraced() {
        let g = priority_graph();
        let m = one_node_machine(SchedulerPolicy::Priority);
        let (traced, _) = simulate_traced(&g, &m);
        let plain = simulate(&g, &m);
        assert_eq!(traced, plain);
    }

    #[test]
    fn heterogeneous_workers_shift_load() {
        // 8 independent unit tasks on each of 2 nodes; node 1 has 4 workers,
        // node 0 has 1: node 0 takes 8 s, node 1 takes 2 s.
        let mut b = GraphBuilder::new();
        for node in 0..2u32 {
            for _ in 0..8 {
                let d = b.add_data(node, 8);
                b.submit(spec(node, 1.0, 0, vec![Access::write(d)]));
            }
        }
        let g = b.build();
        let mut m = MachineConfig::test_machine(2, 1);
        m.per_node_workers = Some(vec![1, 4]);
        let r = simulate(&g, &m);
        assert!((r.makespan - 8.0).abs() < 1e-9, "{}", r.makespan);
        assert_eq!(r.total_workers, 5);
        // Same graph on uniform 4-worker nodes: 2 s.
        let uniform = MachineConfig::test_machine(2, 4);
        assert!((simulate(&g, &uniform).makespan - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod memory_and_source_tests {
    use super::*;
    use crate::config::SourceSelection;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: 0.0,
            priority: 0,
            label: "k",
            accesses,
        }
    }

    #[test]
    fn peak_memory_counts_home_data() {
        let mut b = GraphBuilder::new();
        b.add_data(0, 1000);
        b.add_data(0, 500);
        b.add_data(1, 200);
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(2, 1));
        assert_eq!(r.peak_memory_per_node, vec![1500, 200]);
        assert_eq!(r.max_peak_memory(), 1500);
    }

    #[test]
    fn replicas_raise_peak_until_invalidated() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        let s = b.add_data(1, 10);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        // Node 1 reads d: gains a 1000-byte replica.
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(s)]));
        // Node 0 rewrites d: node 1's replica is invalidated, but the peak
        // remembers it.
        b.submit(spec(0, 1.0, vec![Access::read_write(d)]));
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(2, 1));
        assert_eq!(r.peak_memory_per_node[1], 10 + 1000);
        assert_eq!(r.peak_memory_per_node[0], 1000);
    }

    #[test]
    fn any_replica_sourcing_relieves_the_producer_port() {
        // One producer, many consumers on distinct nodes, long transfers:
        // with Holder sourcing all transfers serialize on node 0's port;
        // with AnyReplica later consumers fetch from earlier receivers.
        let consumers = 6u32;
        let build = || {
            let mut b = GraphBuilder::new();
            let d = b.add_data(0, 1_000_000_000); // 1 s per hop at 1 GB/s
            b.submit(spec(0, 0.001, vec![Access::write(d)]));
            for n in 1..=consumers {
                b.submit(spec(n, 0.001, vec![Access::read(d)]));
            }
            b.build()
        };
        let g = build();
        let mut holder_cfg = MachineConfig::test_machine(consumers + 1, 1);
        holder_cfg.latency = 0.0;
        let mut relay_cfg = holder_cfg.clone();
        relay_cfg.source_selection = SourceSelection::AnyReplica;

        let serial = simulate(&g, &holder_cfg);
        let relayed = simulate(&g, &relay_cfg);
        // Serial: ~consumers seconds; relayed: ~log2(consumers+1) rounds.
        assert!(
            serial.makespan > consumers as f64 * 0.9,
            "{}",
            serial.makespan
        );
        assert!(
            relayed.makespan < serial.makespan * 0.7,
            "relay {} !<< serial {}",
            relayed.makespan,
            serial.makespan
        );
        // Same number of messages either way: relaying moves sources, not
        // volume.
        assert_eq!(serial.messages, relayed.messages);
    }

    #[test]
    fn node_set_mask_iterates_sorted() {
        let mut m = NodeSetMask::new(130);
        for n in [0u32, 63, 64, 65, 129] {
            m.insert(n);
        }
        let got: Vec<NodeId> = m.iter().collect();
        assert_eq!(got, vec![0, 63, 64, 65, 129]);
        m.clear();
        assert_eq!(m.iter().count(), 0);
    }
}

#[cfg(test)]
mod extreme_machine_tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn two_node_graph() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(TaskSpec {
            node: 0,
            duration: 1.0,
            flops: 1e9,
            priority: 0,
            label: "w",
            accesses: vec![Access::write(d)],
        });
        b.submit(TaskSpec {
            node: 1,
            duration: 1.0,
            flops: 1e9,
            priority: 0,
            label: "r",
            accesses: vec![Access::read(d)],
        });
        b.build()
    }

    #[test]
    fn infinite_bandwidth_leaves_only_latency() {
        let g = two_node_graph();
        let mut m = MachineConfig::test_machine(2, 1);
        m.bandwidth = f64::INFINITY;
        m.latency = 0.25;
        let r = simulate(&g, &m);
        assert!((r.makespan - 2.25).abs() < 1e-12, "{}", r.makespan);
    }

    #[test]
    fn zero_latency_leaves_only_bandwidth() {
        let g = two_node_graph();
        let mut m = MachineConfig::test_machine(2, 1);
        m.latency = 0.0;
        m.bandwidth = 2000.0; // 0.5 s for 1000 bytes
        let r = simulate(&g, &m);
        assert!((r.makespan - 2.5).abs() < 1e-12, "{}", r.makespan);
    }

    #[test]
    fn tiny_bandwidth_makes_comm_dominate() {
        let g = two_node_graph();
        let mut m = MachineConfig::test_machine(2, 1);
        m.latency = 0.0;
        m.bandwidth = 10.0; // 100 s transfer
        let r = simulate(&g, &m);
        assert!(r.makespan > 100.0);
        // Work accounting is unaffected by comm time.
        assert!((r.busy_per_node.iter().sum::<f64>() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_tasks_complete_instantly() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for _ in 0..50 {
            b.submit(TaskSpec {
                node: 0,
                duration: 0.0,
                flops: 0.0,
                priority: 0,
                label: "z",
                accesses: vec![Access::read_write(d)],
            });
        }
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(1, 1));
        assert_eq!(r.tasks, 50);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.gflops(), 0.0);
    }
}
