//! Discrete-event simulation of a task graph on a cluster.
//!
//! Machine model (per [`MachineConfig`]):
//!
//! * each node runs `workers_per_node` identical worker cores; a ready task
//!   occupies one core for its declared duration;
//! * each node has one send port and one receive port; a tile transfer
//!   occupies the source's send port and the destination's receive port for
//!   `latency + bytes/bandwidth` seconds (store-and-forward, ports
//!   serialize), fully overlapped with computation — matching the paper's
//!   observation that Chameleon/StarPU overlaps its point-to-point MPI
//!   messages with kernels (§II-C);
//! * a task becomes *runnable* once its dependencies are done **and** all
//!   its read data are resident on its node; missing tiles are fetched from
//!   the current holder (the last writer's node);
//! * with the replica cache enabled, a received tile stays valid on the node
//!   until the tile is next written (StarPU's data replication), so each
//!   tile version is sent at most once per consuming node — the property
//!   that makes the number of messages proportional to the paper's
//!   communication volume metric.
//!
//! The port-serialization pricing above is [`NetworkModel::Constant`], the
//! default. The contended models
//! ([`NetworkModel::SharedBandwidth`] / [`NetworkModel::Hierarchical`])
//! replace it with a fluid-flow [`NetEngine`]: transfers become flows that
//! split NIC (and uplink) capacity max-min fairly, with completion times
//! recomputed on every arrival and departure. Which transfers happen — the
//! message counts, byte volumes, and per-link breakdown reported by
//! [`Simulator::link_traffic`] — is decided at schedule time and identical
//! under every model; only *when* they complete differs.
//!
//! The simulator is deterministic: event ties are broken by a monotonic
//! sequence number and ready-queue ties by submission order.
//!
//! [`NetworkModel::Constant`]: crate::config::NetworkModel::Constant
//! [`NetworkModel::SharedBandwidth`]: crate::config::NetworkModel::SharedBandwidth
//! [`NetworkModel::Hierarchical`]: crate::config::NetworkModel::Hierarchical
//!
//! # State layout
//!
//! All mutable state lives in dense `Vec`s indexed by `TaskId`, `DataId`,
//! or `NodeId` — replica sets are a flat bitset (`words_per_set` words per
//! datum), in-flight transfers a per-datum list of `(destination, waiter
//! list)` pairs with the waiter `Vec`s drawn from a free-list pool. A
//! [`Simulator`] is constructed once per task graph and `reset` between
//! machine configs, so a sweep over many configs pays graph-sized
//! allocation exactly once.

use crate::config::{MachineConfig, SchedulerPolicy, SourceSelection};
use crate::graph::TaskGraph;
use crate::netmodel::{NetEngine, SimNetError};
use crate::report::{LinkTraffic, SimReport};
use crate::{DataId, NodeId, TaskId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One executed task in a simulation trace (a Paje-like span).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpan {
    /// The task.
    pub task: TaskId,
    /// Node it ran on.
    pub node: NodeId,
    /// Worker slot within the node (`0..workers_of(node)`).
    pub worker: u32,
    /// Kernel label of the task (e.g. `"getrf"`).
    pub label: &'static str,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// Totally ordered wrapper for simulation timestamps, stored as raw `f64`
/// bits. Simulation times are always non-negative and finite, and on that
/// range the IEEE-754 bit pattern is order-isomorphic to `f64::total_cmp`,
/// so plain integer comparison gives the same order at a fraction of the
/// cost (this comparison sits under every event-heap sift).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Time(u64);

impl Time {
    #[inline]
    fn new(t: f64) -> Self {
        debug_assert!(t >= 0.0, "simulation time went negative: {t}");
        Self(t.to_bits())
    }

    #[inline]
    fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    TaskDone(TaskId),
    TransferDone(DataId, NodeId),
    /// Contended-model wakeup hint: integrate the flow engine to this
    /// time and fire any flow completions due. Hints carry no payload —
    /// a stale hint (rates changed since it was pushed) is a harmless
    /// no-op advance.
    NetAdvance,
}

/// Compact encoding of [`Event`] so the heap entry stays `Copy + Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EventKey(u64);

impl EventKey {
    fn task(t: TaskId) -> Self {
        Self(u64::from(t))
    }

    fn transfer(d: DataId, n: NodeId) -> Self {
        debug_assert!(n < (1 << 24), "node id exceeds event encoding");
        Self(1 << 63 | u64::from(d) << 24 | u64::from(n))
    }

    fn net_advance() -> Self {
        Self(1 << 62)
    }

    fn decode(self) -> Event {
        if self.0 >> 63 == 1 {
            let payload = self.0 & !(1 << 63);
            Event::TransferDone((payload >> 24) as DataId, (payload & 0xFF_FFFF) as NodeId)
        } else if self.0 >> 62 == 1 {
            Event::NetAdvance
        } else {
            Event::TaskDone(self.0 as TaskId)
        }
    }
}

/// Reusable discrete-event simulator for one task graph.
///
/// Construction precomputes everything that depends only on the graph
/// (initial dependency counts, home-node memory, flop total) and sizes the
/// state arenas; [`Simulator::run`] then simulates the graph on any
/// [`MachineConfig`], recycling every buffer between runs. Results are
/// identical to calling [`simulate`] afresh — the reuse only amortizes
/// allocation:
///
/// ```
/// use flexdist_runtime::{Access, GraphBuilder, MachineConfig, Simulator, TaskSpec};
///
/// let mut b = GraphBuilder::new();
/// let d = b.add_data(0, 8);
/// b.submit(TaskSpec {
///     node: 0, duration: 1.0, flops: 1e9, priority: 0, label: "k",
///     accesses: vec![Access::read_write(d)],
/// });
/// let graph = b.build();
/// let mut sim = Simulator::new(&graph);
/// for nodes in [1, 2, 4] {
///     let report = sim.run(&MachineConfig::test_machine(nodes, 2));
///     assert_eq!(report.tasks, 1);
/// }
/// ```
pub struct Simulator<'g> {
    graph: &'g TaskGraph,
    /// Active machine description, `clone_from`'d on each run so the
    /// heterogeneous-worker vector's allocation is recycled too.
    config: MachineConfig,
    // Per-graph precomputation (immutable after `new`). The task table is
    // mirrored in structure-of-arrays / CSR form: the event loop touches
    // one contiguous array per field instead of chasing three `Vec`
    // allocations inside every `Task`, which is what makes large graphs
    // cache-bound.
    /// `graph.tasks[i].n_deps`, copied into `deps_left` on reset.
    init_deps: Vec<u32>,
    task_node: Vec<NodeId>,
    task_duration: Vec<f64>,
    task_priority: Vec<i64>,
    /// CSR adjacency: reads of task `i` are
    /// `reads_dat[reads_off[i]..reads_off[i + 1]]`.
    reads_off: Vec<u32>,
    reads_dat: Vec<DataId>,
    writes_off: Vec<u32>,
    writes_dat: Vec<DataId>,
    succ_off: Vec<u32>,
    succ_dat: Vec<TaskId>,
    /// Bytes of home data per owner node (indexed by `NodeId`).
    home_mem: Vec<u64>,
    total_flops: f64,
    /// `1 + max task node` (0 when there are no tasks).
    node_bound: u32,
    /// `1 + max data owner` (0 when there are no data).
    owner_bound: u32,
    // Event queue.
    now: f64,
    events: BinaryHeap<Reverse<(Time, u64, EventKey)>>,
    seq: u64,
    // Per task.
    deps_left: Vec<u32>,
    fetches_left: Vec<u32>,
    /// Worker slot each task ran on (filled at dispatch).
    slot_of: Vec<u32>,
    // Per node.
    /// Stack of idle worker slot ids per node.
    idle_slots: Vec<Vec<u32>>,
    ready: Vec<BinaryHeap<(i64, Reverse<TaskId>)>>,
    /// Peak ready-queue length observed per node.
    peak_ready: Vec<usize>,
    out_free: Vec<f64>,
    in_free: Vec<f64>,
    busy: Vec<f64>,
    // Per datum.
    holder: Vec<NodeId>,
    /// Flat replica bitset: datum `d` owns words
    /// `[d * words_per_set, (d + 1) * words_per_set)`.
    replica_words: Vec<u64>,
    words_per_set: usize,
    /// In-flight transfers per datum: `(destination, waiter list index)`.
    in_flight: Vec<Vec<(NodeId, u32)>>,
    /// Pooled waiter lists referenced by `in_flight` entries.
    waiter_lists: Vec<Vec<TaskId>>,
    /// Recycled `waiter_lists` indices.
    free_lists: Vec<u32>,
    /// Nodes whose ready queue or worker pool changed since the last
    /// dispatch pass. Dispatch is deferred to the end of each event batch so
    /// that tasks becoming ready at the same timestamp compete by priority
    /// rather than by enqueue order.
    dirty_nodes: Vec<usize>,
    /// Monotonic counter stamping ready-queue insertions (LIFO policy).
    ready_seq: i64,
    /// Optional execution trace (one span per task).
    trace: Option<Vec<TaskSpan>>,
    /// Currently resident bytes per node (home data + valid replicas).
    mem_now: Vec<u64>,
    /// High-water mark of `mem_now`.
    mem_peak: Vec<u64>,
    /// `AnyReplica` mode: destinations waiting for a free source, per datum.
    pending_queues: Vec<VecDeque<NodeId>>,
    /// Sorted ids of data with a non-empty pending queue (deterministic
    /// ascending pump order, like the `BTreeMap` it replaces).
    pending_active: Vec<DataId>,
    // Contended network models (inert under `NetworkModel::Constant`).
    /// Fluid-flow engine pricing transfers under the contended models.
    net: NetEngine,
    /// Time of the most recent un-popped `NetAdvance` hint (`NaN` when the
    /// latest hint was consumed), used to avoid pushing duplicate hints.
    net_next: f64,
    /// Scratch buffer for flow-completion tokens.
    net_scratch: Vec<u64>,
    /// First routing failure hit by a contended topology; aborts the run.
    route_error: Option<SimNetError>,
    // Stats.
    messages: u64,
    bytes: u64,
    /// Per-link `(messages, bytes)` scheduled so far, keyed by
    /// `(source, destination)`. Model-invariant (see
    /// [`Simulator::link_traffic`]).
    link_map: HashMap<(NodeId, NodeId), (u64, u64)>,
    completed: usize,
    makespan: f64,
}

/// Simulate `graph` on `config`'s machine. Returns the execution report.
///
/// Convenience wrapper constructing a one-shot [`Simulator`]; prefer
/// reusing a `Simulator` when running the same graph on several configs.
///
/// # Panics
/// Panics if a task or datum references a node `>= config.nodes`, or if the
/// graph deadlocks (impossible for graphs built by [`crate::GraphBuilder`],
/// whose dependencies always point backwards in submission order).
#[must_use]
pub fn simulate(graph: &TaskGraph, config: &MachineConfig) -> SimReport {
    Simulator::new(graph).run(config)
}

/// Like [`simulate`], but also returns the per-task execution trace
/// (a [`TaskSpan`] for every task, in completion order).
///
/// # Panics
/// Same conditions as [`simulate`].
#[must_use]
pub fn simulate_traced(graph: &TaskGraph, config: &MachineConfig) -> (SimReport, Vec<TaskSpan>) {
    Simulator::new(graph).run_traced(config)
}

impl<'g> Simulator<'g> {
    /// Build a simulator for `graph`, precomputing graph-derived state.
    #[must_use]
    pub fn new(graph: &'g TaskGraph) -> Self {
        let n_tasks = graph.tasks.len();
        let n_data = graph.data_owner.len();
        let node_bound = graph.tasks.iter().map(|t| t.node + 1).max().unwrap_or(0);
        let owner_bound = graph.data_owner.iter().map(|&o| o + 1).max().unwrap_or(0);
        let mut home_mem = vec![0u64; owner_bound as usize];
        for (d, &o) in graph.data_owner.iter().enumerate() {
            home_mem[o as usize] += graph.data_bytes[d];
        }
        let csr = |field: fn(&crate::graph::Task) -> &[u32]| {
            let mut off = Vec::with_capacity(n_tasks + 1);
            let mut dat = Vec::new();
            off.push(0u32);
            for t in &graph.tasks {
                dat.extend_from_slice(field(t));
                off.push(dat.len() as u32);
            }
            (off, dat)
        };
        let (reads_off, reads_dat) = csr(|t| &t.reads);
        let (writes_off, writes_dat) = csr(|t| &t.writes);
        let (succ_off, succ_dat) = csr(|t| &t.successors);
        Self {
            graph,
            config: MachineConfig::test_machine(1, 1),
            init_deps: graph.tasks.iter().map(|t| t.n_deps).collect(),
            task_node: graph.tasks.iter().map(|t| t.node).collect(),
            task_duration: graph.tasks.iter().map(|t| t.duration).collect(),
            task_priority: graph.tasks.iter().map(|t| t.priority).collect(),
            reads_off,
            reads_dat,
            writes_off,
            writes_dat,
            succ_off,
            succ_dat,
            home_mem,
            total_flops: graph.total_flops(),
            node_bound,
            owner_bound,
            now: 0.0,
            events: BinaryHeap::new(),
            seq: 0,
            deps_left: Vec::with_capacity(n_tasks),
            fetches_left: Vec::with_capacity(n_tasks),
            slot_of: vec![0; n_tasks],
            idle_slots: Vec::new(),
            ready: Vec::new(),
            peak_ready: Vec::new(),
            out_free: Vec::new(),
            in_free: Vec::new(),
            busy: Vec::new(),
            holder: Vec::with_capacity(n_data),
            replica_words: Vec::new(),
            words_per_set: 0,
            in_flight: (0..n_data).map(|_| Vec::new()).collect(),
            waiter_lists: Vec::new(),
            free_lists: Vec::new(),
            dirty_nodes: Vec::new(),
            ready_seq: 0,
            trace: None,
            mem_now: Vec::new(),
            mem_peak: Vec::new(),
            pending_queues: (0..n_data).map(|_| VecDeque::new()).collect(),
            pending_active: Vec::new(),
            net: NetEngine::default(),
            net_next: f64::NAN,
            net_scratch: Vec::new(),
            route_error: None,
            messages: 0,
            bytes: 0,
            link_map: HashMap::new(),
            completed: 0,
            makespan: 0.0,
        }
    }

    /// The graph this simulator was built for.
    #[must_use]
    pub fn graph(&self) -> &'g TaskGraph {
        self.graph
    }

    /// Simulate the graph on `config`'s machine, recycling all internal
    /// buffers from any previous run.
    ///
    /// # Panics
    /// Same conditions as [`simulate`], plus a contended topology leaving
    /// a transfer unroutable (use [`Simulator::try_run`] to get the typed
    /// error instead).
    #[must_use]
    pub fn run(&mut self, config: &MachineConfig) -> SimReport {
        match self.try_run(config) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`Simulator::run`], but reports an unroutable transfer as a
    /// typed [`SimNetError`] instead of panicking.
    ///
    /// # Errors
    /// [`SimNetError::NoRoute`] when the configured topology offers no
    /// path for a transfer the graph needs.
    ///
    /// # Panics
    /// Same conditions as [`simulate`].
    pub fn try_run(&mut self, config: &MachineConfig) -> Result<SimReport, SimNetError> {
        self.reset(config);
        self.trace = None;
        self.run_to_completion();
        match self.route_error {
            Some(e) => Err(e),
            None => Ok(self.report()),
        }
    }

    /// Like [`Simulator::run`], but also collects the execution trace.
    ///
    /// # Panics
    /// Same conditions as [`Simulator::run`].
    #[must_use]
    pub fn run_traced(&mut self, config: &MachineConfig) -> (SimReport, Vec<TaskSpan>) {
        self.reset(config);
        self.trace = Some(Vec::with_capacity(self.graph.tasks.len()));
        self.run_to_completion();
        if let Some(e) = self.route_error {
            panic!("{e}");
        }
        let trace = self.trace.take().expect("tracing was requested");
        (self.report(), trace)
    }

    /// Per-link traffic of the last run, sorted by `(from, to)`: how many
    /// messages and bytes each ordered node pair exchanged.
    ///
    /// These counts are decided when transfers are *scheduled* (by the
    /// task graph, the replica cache, and the sourcing policy), never by
    /// transfer timing, so they are identical under every
    /// [`crate::NetworkModel`] — the invariant `flexdist replay` checks
    /// against executor net-traces.
    #[must_use]
    pub fn link_traffic(&self) -> Vec<LinkTraffic> {
        let mut links: Vec<LinkTraffic> = self
            .link_map
            .iter()
            .map(|(&(from, to), &(messages, bytes))| LinkTraffic {
                from,
                to,
                messages,
                bytes,
            })
            .collect();
        links.sort_by_key(|l| (l.from, l.to));
        links
    }

    /// Restore the pristine pre-run state for `config`. Every buffer keeps
    /// its capacity; nothing graph-sized is reallocated.
    fn reset(&mut self, config: &MachineConfig) {
        let n_nodes = config.nodes as usize;
        assert!(n_nodes > 0, "machine must have at least one node");
        assert!(
            self.node_bound as usize <= n_nodes,
            "task node out of range"
        );
        assert!(
            self.owner_bound as usize <= n_nodes,
            "data owner out of range"
        );
        self.config.clone_from(config);
        let graph = self.graph;
        let n_tasks = graph.tasks.len();
        let n_data = graph.data_owner.len();

        self.now = 0.0;
        self.events.clear();
        self.seq = 0;

        self.deps_left.clear();
        self.deps_left.extend_from_slice(&self.init_deps);
        self.fetches_left.clear();
        self.fetches_left.resize(n_tasks, 0);

        if self.idle_slots.len() < n_nodes {
            self.idle_slots.resize_with(n_nodes, Vec::new);
        }
        for (n, slots) in self.idle_slots.iter_mut().enumerate().take(n_nodes) {
            slots.clear();
            // Reversed so the owner pops slot 0 first.
            slots.extend((0..config.workers_of(n as NodeId)).rev());
        }
        if self.ready.len() < n_nodes {
            self.ready.resize_with(n_nodes, BinaryHeap::new);
        }
        for heap in &mut self.ready {
            heap.clear();
        }
        self.peak_ready.clear();
        self.peak_ready.resize(n_nodes, 0);
        self.out_free.clear();
        self.out_free.resize(n_nodes, 0.0);
        self.in_free.clear();
        self.in_free.resize(n_nodes, 0.0);
        self.busy.clear();
        self.busy.resize(n_nodes, 0.0);

        self.holder.clear();
        self.holder.extend_from_slice(&graph.data_owner);
        let wps = n_nodes.div_ceil(64);
        self.words_per_set = wps;
        self.replica_words.clear();
        self.replica_words.resize(n_data * wps, 0);
        for (d, &o) in graph.data_owner.iter().enumerate() {
            self.replica_words[d * wps + o as usize / 64] |= 1u64 << (o % 64);
        }

        for entry in &mut self.in_flight {
            entry.clear();
        }
        self.free_lists.clear();
        for (i, list) in self.waiter_lists.iter_mut().enumerate().rev() {
            list.clear();
            self.free_lists.push(i as u32);
        }
        for &d in &self.pending_active {
            self.pending_queues[d as usize].clear();
        }
        self.pending_active.clear();

        self.dirty_nodes.clear();
        self.ready_seq = 0;
        self.trace = None;

        self.mem_now.clear();
        self.mem_now.resize(n_nodes, 0);
        self.mem_now[..self.home_mem.len()].copy_from_slice(&self.home_mem);
        self.mem_peak.clear();
        self.mem_peak.extend_from_slice(&self.mem_now);

        self.net.configure(config);
        self.net_next = f64::NAN;
        self.net_scratch.clear();
        self.route_error = None;

        self.messages = 0;
        self.bytes = 0;
        self.link_map.clear();
        self.completed = 0;
        self.makespan = 0.0;
    }

    fn run_to_completion(&mut self) {
        let n_tasks = self.graph.tasks.len();
        // Seed: tasks with no dependencies request their inputs.
        for id in 0..n_tasks as TaskId {
            if self.deps_left[id as usize] == 0 {
                self.request_inputs(id);
            }
        }
        self.dispatch_dirty();
        let contended = self.net.is_contended();
        if contended {
            self.net_reschedule();
        }

        while self.route_error.is_none() {
            let Some(Reverse((time, _, key))) = self.events.pop() else {
                break;
            };
            let t = time.get();
            self.now = t;
            if contended {
                // Integrate the flow engine to the new time first, so any
                // flow completing by `t` lands before (and alongside) the
                // popped event's effects.
                self.net_sync();
            }
            self.handle_event(key, t);
            // Drain every event sharing this timestamp before dispatching, so
            // simultaneous completions release their successors together.
            while let Some(&Reverse((t2, _, _))) = self.events.peek() {
                if t2 > time {
                    break;
                }
                let Reverse((_, _, key2)) = self.events.pop().expect("peeked");
                self.handle_event(key2, t);
            }
            self.dispatch_dirty();
            if contended {
                // New flows / departures changed the rate allocation: make
                // sure a wakeup hint exists at the next predicted finish.
                self.net_reschedule();
            }
        }

        if self.route_error.is_some() {
            return;
        }
        assert_eq!(
            self.completed, n_tasks,
            "simulation finished with {} of {} tasks executed (deadlock?)",
            self.completed, n_tasks
        );
    }

    #[inline]
    fn handle_event(&mut self, key: EventKey, t: f64) {
        match key.decode() {
            Event::TaskDone(id) => {
                self.makespan = self.makespan.max(t);
                self.on_task_done(id);
            }
            Event::TransferDone(d, n) => {
                self.makespan = self.makespan.max(t);
                self.on_transfer_done(d, n);
            }
            // The hint's work was done by `net_sync` at pop time; a stale
            // hint must not extend the makespan.
            Event::NetAdvance => self.net_next = f64::NAN,
        }
    }

    /// Contended models: advance the flow engine to `self.now` and fire
    /// completions until none are due. A completion may schedule new flows
    /// (relay pumps, piggybacked waiters becoming ready); the engine is
    /// already integrated to `now`, so they join the flow set directly.
    fn net_sync(&mut self) {
        let mut completed = std::mem::take(&mut self.net_scratch);
        let mut fired = false;
        loop {
            completed.clear();
            self.net.advance_to(self.now, &mut completed);
            if completed.is_empty() {
                break;
            }
            fired = true;
            for &token in &completed {
                if let Event::TransferDone(d, n) = EventKey(token).decode() {
                    self.on_transfer_done(d, n);
                }
            }
        }
        self.net_scratch = completed;
        if fired {
            self.makespan = self.makespan.max(self.now);
        }
    }

    /// Contended models: push a `NetAdvance` hint at the earliest predicted
    /// flow finish, unless one is already pending at exactly that time.
    fn net_reschedule(&mut self) {
        if let Some(finish) = self.net.next_finish() {
            // Comparing against NaN is false, so a consumed hint always
            // re-arms. An infinite finish (a zero-capacity port) is never
            // scheduled; the deadlock assertion reports it instead.
            if finish.is_finite() && finish != self.net_next {
                self.push_event(finish, EventKey::net_advance());
                self.net_next = finish;
            }
        }
    }

    fn report(&self) -> SimReport {
        let config = &self.config;
        let idle_per_node: Vec<f64> = self
            .busy
            .iter()
            .enumerate()
            .map(|(n, &busy)| {
                (self.makespan * f64::from(config.workers_of(n as NodeId)) - busy).max(0.0)
            })
            .collect();
        SimReport {
            makespan: self.makespan,
            total_flops: self.total_flops,
            messages: self.messages,
            bytes_sent: self.bytes,
            busy_per_node: self.busy.clone(),
            peak_memory_per_node: self.mem_peak.clone(),
            tasks: self.graph.tasks.len(),
            total_workers: config.total_workers(),
            peak_ready_per_node: self.peak_ready.clone(),
            idle_per_node,
        }
    }

    #[inline]
    fn push_event(&mut self, at: f64, key: EventKey) {
        self.seq += 1;
        self.events.push(Reverse((Time::new(at), self.seq, key)));
    }

    #[inline]
    fn has_replica(&self, d: DataId, n: NodeId) -> bool {
        self.replica_words[d as usize * self.words_per_set + n as usize / 64] & (1u64 << (n % 64))
            != 0
    }

    /// All dependencies of `id` are satisfied: fetch missing read data, then
    /// (possibly immediately) mark ready.
    fn request_inputs(&mut self, id: TaskId) {
        let iu = id as usize;
        let node = self.task_node[iu];
        let mut pending = 0u32;
        for ri in self.reads_off[iu] as usize..self.reads_off[iu + 1] as usize {
            let d = self.reads_dat[ri];
            if self.has_replica(d, node) {
                continue;
            }
            pending += 1;
            let du = d as usize;
            let pos = self.in_flight[du].iter().position(|&(n, _)| n == node);
            match pos {
                Some(i) if self.config.replica_cache => {
                    // A transfer of this tile to this node is already on the
                    // wire (or queued); piggyback on it.
                    let li = self.in_flight[du][i].1 as usize;
                    self.waiter_lists[li].push(id);
                }
                pos => {
                    // Either nothing in flight, or caching is disabled (each
                    // consumer pays its own message).
                    match pos {
                        Some(i) => {
                            let li = self.in_flight[du][i].1 as usize;
                            self.waiter_lists[li].push(id);
                        }
                        None => {
                            let li = self.free_lists.pop().unwrap_or_else(|| {
                                self.waiter_lists.push(Vec::new());
                                (self.waiter_lists.len() - 1) as u32
                            });
                            self.waiter_lists[li as usize].push(id);
                            self.in_flight[du].push((node, li));
                        }
                    }
                    match self.config.source_selection {
                        SourceSelection::Holder => {
                            let src = self.holder[du];
                            self.schedule_transfer(src, d, node);
                        }
                        SourceSelection::AnyReplica => {
                            assert!(
                                self.config.replica_cache,
                                "AnyReplica sourcing requires the replica cache"
                            );
                            // Defer: the transfer starts when some replica
                            // holder's send port is free, so later requests
                            // can relay from earlier receivers (binomial-
                            // tree-like broadcast).
                            self.pending_push(d, node);
                        }
                    }
                }
            }
        }
        if pending == 0 {
            self.mark_ready(id);
        } else {
            self.fetches_left[id as usize] = pending;
            if self.config.source_selection == SourceSelection::AnyReplica {
                self.pump_pending_transfers();
            }
        }
    }

    /// Schedule one transfer: count it (counts are model-invariant), then
    /// either reserve ports and push its completion event (constant model)
    /// or hand it to the flow engine (contended models).
    fn schedule_transfer(&mut self, src: NodeId, d: DataId, dst: NodeId) {
        let bytes = self.graph.data_bytes[d as usize];
        self.messages += 1;
        self.bytes += bytes;
        let link = self.link_map.entry((src, dst)).or_insert((0, 0));
        link.0 += 1;
        link.1 += bytes;
        if self.net.is_contended() {
            // The engine is always integrated to `self.now` before event
            // work, so the flow starts immediately; the wakeup hint is
            // (re)armed at batch end by `net_reschedule`.
            let work = self.config.transfer_time(bytes);
            let token = EventKey::transfer(d, dst).0;
            if let Err(e) = self.net.add_flow(token, src, dst, work) {
                self.route_error.get_or_insert(e);
            }
            return;
        }
        let start = self
            .now
            .max(self.out_free[src as usize])
            .max(self.in_free[dst as usize]);
        let end = start + self.config.transfer_time(bytes);
        self.out_free[src as usize] = end;
        self.in_free[dst as usize] = end;
        self.push_event(end, EventKey::transfer(d, dst));
    }

    /// `AnyReplica` mode: queue `dst` as waiting for a source of `d`,
    /// keeping `pending_active` sorted.
    fn pending_push(&mut self, d: DataId, dst: NodeId) {
        let queue = &mut self.pending_queues[d as usize];
        if queue.is_empty() {
            if let Err(i) = self.pending_active.binary_search(&d) {
                self.pending_active.insert(i, d);
            }
        }
        queue.push_back(dst);
    }

    /// `AnyReplica` mode: start queued transfers whose datum has a replica
    /// holder with a currently-free send port. Called whenever time
    /// advances past a transfer completion (new replica and/or freed port).
    fn pump_pending_transfers(&mut self) {
        let wps = self.words_per_set;
        let contended = self.net.is_contended();
        for i in 0..self.pending_active.len() {
            let d = self.pending_active[i];
            let du = d as usize;
            while !self.pending_queues[du].is_empty() {
                // A source is usable when it holds the replica and its
                // send port is free now — under the contended models
                // "free" means no active outgoing flow, so relays still
                // grow binomially instead of everyone fair-sharing the
                // producer's NIC. Lowest node id wins (matching the
                // sorted replica-set iteration this replaces).
                let mut src = None;
                'scan: for wi in 0..wps {
                    let mut w = self.replica_words[du * wps + wi];
                    while w != 0 {
                        let b = w.trailing_zeros();
                        w &= w - 1;
                        let s = (wi * 64) as u32 + b;
                        let free = if contended {
                            self.net.out_load(s) == 0
                        } else {
                            self.out_free[s as usize] <= self.now
                        };
                        if free {
                            src = Some(s);
                            break 'scan;
                        }
                    }
                }
                let Some(src) = src else {
                    break;
                };
                let dst = self.pending_queues[du].pop_front().expect("non-empty");
                self.schedule_transfer(src, d, dst);
            }
        }
        let queues = &self.pending_queues;
        self.pending_active
            .retain(|&d| !queues[d as usize].is_empty());
    }

    fn on_transfer_done(&mut self, d: DataId, node: NodeId) {
        let du = d as usize;
        let bytes = self.graph.data_bytes[du];
        if self.config.replica_cache {
            let word = &mut self.replica_words[du * self.words_per_set + node as usize / 64];
            let bit = 1u64 << (node % 64);
            if *word & bit == 0 {
                *word |= bit;
                self.add_memory(node, bytes);
            }
        } else {
            // Uncached transfers still occupy the consumer transiently;
            // count the high-water mark as if held for the reading task.
            self.add_memory(node, bytes);
            self.mem_now[node as usize] -= bytes;
        }
        if self.config.source_selection == SourceSelection::AnyReplica {
            // A port just freed and a new replica exists: restart the pump.
            self.pump_pending_transfers();
        }
        let Some(pos) = self.in_flight[du].iter().position(|&(n, _)| n == node) else {
            return;
        };
        let li = self.in_flight[du][pos].1 as usize;
        if !self.config.replica_cache {
            // Without caching, transfers were scheduled one per waiter but
            // share the event key; wake exactly one waiter per event.
            // (Each waiter scheduled its own TransferDone, so waking the
            // most recently queued one keeps the accounting exact.)
            match self.waiter_lists[li].pop() {
                Some(w) => {
                    if self.waiter_lists[li].is_empty() {
                        self.in_flight[du].swap_remove(pos);
                        self.free_lists.push(li as u32);
                    }
                    self.finish_fetch(w);
                }
                None => {
                    self.in_flight[du].swap_remove(pos);
                    self.free_lists.push(li as u32);
                }
            }
            return;
        }
        self.in_flight[du].swap_remove(pos);
        let mut list = std::mem::take(&mut self.waiter_lists[li]);
        for &w in &list {
            self.finish_fetch(w);
        }
        list.clear();
        self.waiter_lists[li] = list;
        self.free_lists.push(li as u32);
    }

    fn add_memory(&mut self, node: NodeId, bytes: u64) {
        let slot = &mut self.mem_now[node as usize];
        *slot += bytes;
        let peak = &mut self.mem_peak[node as usize];
        if *slot > *peak {
            *peak = *slot;
        }
    }

    fn finish_fetch(&mut self, id: TaskId) {
        let left = &mut self.fetches_left[id as usize];
        debug_assert!(*left > 0);
        *left -= 1;
        if *left == 0 {
            self.mark_ready(id);
        }
    }

    fn mark_ready(&mut self, id: TaskId) {
        let node = self.task_node[id as usize] as usize;
        // The heap pops its maximum key; encode the policy into the key.
        let key = match self.config.scheduler {
            SchedulerPolicy::Priority => self.task_priority[id as usize],
            SchedulerPolicy::Fifo => 0,
            SchedulerPolicy::Lifo => {
                self.ready_seq += 1;
                self.ready_seq
            }
        };
        self.ready[node].push((key, Reverse(id)));
        self.peak_ready[node] = self.peak_ready[node].max(self.ready[node].len());
        self.dirty_nodes.push(node);
    }

    fn dispatch_dirty(&mut self) {
        while let Some(node) = self.dirty_nodes.pop() {
            self.dispatch(node);
        }
    }

    fn dispatch(&mut self, node: usize) {
        let graph = self.graph;
        while !self.idle_slots[node].is_empty() {
            let Some((_, Reverse(id))) = self.ready[node].pop() else {
                break;
            };
            let slot = self.idle_slots[node].pop().expect("checked non-empty");
            self.slot_of[id as usize] = slot;
            let dur = self.task_duration[id as usize];
            self.busy[node] += dur;
            if let Some(trace) = &mut self.trace {
                trace.push(TaskSpan {
                    task: id,
                    node: node as NodeId,
                    worker: slot,
                    label: graph.tasks[id as usize].label,
                    start: self.now,
                    end: self.now + dur,
                });
            }
            self.push_event(self.now + dur, EventKey::task(id));
        }
    }

    fn on_task_done(&mut self, id: TaskId) {
        self.completed += 1;
        let graph = self.graph;
        let iu = id as usize;
        let node = self.task_node[iu] as usize;
        self.idle_slots[node].push(self.slot_of[iu]);
        // Writes create a new version: the writer's node becomes the only
        // holder; cached replicas elsewhere are invalidated (freeing their
        // memory).
        let wps = self.words_per_set;
        let writer_word = node / 64;
        let writer_bit = 1u64 << (node % 64);
        for wi in self.writes_off[iu] as usize..self.writes_off[iu + 1] as usize {
            let d = self.writes_dat[wi];
            let base = d as usize * wps;
            self.holder[d as usize] = node as NodeId;
            // Fast path: the writer is already the sole replica holder
            // (every in-place update of a local tile) — nothing to evict,
            // no memory change.
            if wps == 1 {
                let w = self.replica_words[base];
                if w == writer_bit {
                    continue;
                }
            }
            let bytes = graph.data_bytes[d as usize];
            let mut writer_had_it = false;
            for wj in 0..wps {
                let mut w = self.replica_words[base + wj];
                if w == 0 {
                    continue;
                }
                self.replica_words[base + wj] = 0;
                while w != 0 {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    let n2 = (wj * 64) as NodeId + b;
                    if n2 as usize == node {
                        writer_had_it = true;
                    } else {
                        self.mem_now[n2 as usize] -= bytes;
                    }
                }
            }
            self.replica_words[base + writer_word] |= writer_bit;
            if !writer_had_it {
                self.add_memory(node as NodeId, bytes);
            }
        }
        for si in self.succ_off[iu] as usize..self.succ_off[iu + 1] as usize {
            let s = self.succ_dat[si];
            let left = &mut self.deps_left[s as usize];
            debug_assert!(*left > 0);
            *left -= 1;
            if *left == 0 {
                self.request_inputs(s);
            }
        }
        self.dirty_nodes.push(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: duration * 1e9,
            priority: 0,
            label: "k",
            accesses,
        }
    }

    fn machine(nodes: u32, workers: u32) -> MachineConfig {
        let mut m = MachineConfig::test_machine(nodes, workers);
        m.latency = 0.0;
        m.bandwidth = 1e9;
        m
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        let r = simulate(&g, &machine(2, 2));
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.tasks, 0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn sequential_chain_time_adds_up() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for _ in 0..5 {
            b.submit(spec(0, 1.0, vec![Access::read_write(d)]));
        }
        let g = b.build();
        let r = simulate(&g, &machine(1, 4));
        assert!((r.makespan - 5.0).abs() < 1e-12);
        assert_eq!(r.messages, 0);
        assert!((r.busy_per_node[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let mut b = GraphBuilder::new();
        for _ in 0..4 {
            let d = b.add_data(0, 8);
            b.submit(spec(0, 1.0, vec![Access::write(d)]));
        }
        let g = b.build();
        // 4 workers: all at once.
        assert!((simulate(&g, &machine(1, 4)).makespan - 1.0).abs() < 1e-12);
        // 2 workers: two waves.
        assert!((simulate(&g, &machine(1, 2)).makespan - 2.0).abs() < 1e-12);
        // 1 worker: serial.
        assert!((simulate(&g, &machine(1, 1)).makespan - 4.0).abs() < 1e-12);
    }

    #[test]
    fn remote_read_costs_one_message() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        b.submit(spec(1, 1.0, vec![Access::read(d)]));
        let g = b.build();
        let m = machine(2, 1);
        let r = simulate(&g, &m);
        assert_eq!(r.messages, 1);
        assert_eq!(r.bytes_sent, 1000);
        // write (1.0) + transfer (1000 / 1e9 s) + read (1.0).
        let expect = 1.0 + 1000.0 / 1e9 + 1.0;
        assert!((r.makespan - expect).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn replica_cache_dedups_messages() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        // Three readers on the same remote node: one message with cache.
        let e1 = b.add_data(1, 8);
        let e2 = b.add_data(1, 8);
        let e3 = b.add_data(1, 8);
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(e1)]));
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(e2)]));
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(e3)]));
        let g = b.build();

        let cached = simulate(&g, &machine(2, 1));
        assert_eq!(cached.messages, 1);

        let mut nocache = machine(2, 1);
        nocache.replica_cache = false;
        let r = simulate(&g, &nocache);
        assert_eq!(r.messages, 3, "without cache each reader fetches");
    }

    #[test]
    fn write_invalidates_replicas() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        let s1 = b.add_data(1, 8);
        let s2 = b.add_data(1, 8);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(s1)]));
        //

        b.submit(spec(0, 1.0, vec![Access::read_write(d)])); // new version
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(s2)]));
        let g = b.build();
        let r = simulate(&g, &machine(2, 1));
        // Node 1 must fetch d twice: once per version.
        assert_eq!(r.messages, 2);
    }

    #[test]
    fn owner_does_not_fetch_its_own_data() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(1, 1000);
        b.submit(spec(1, 1.0, vec![Access::read(d)]));
        let g = b.build();
        let r = simulate(&g, &machine(2, 1));
        assert_eq!(r.messages, 0);
        assert!((r.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_serializes_on_send_port() {
        // One producer node sends two different tiles to two different
        // consumers; the shared send port serializes the transfers.
        let mut b = GraphBuilder::new();
        let d1 = b.add_data(0, 1_000_000_000); // 1 s at 1 GB/s
        let d2 = b.add_data(0, 1_000_000_000);
        b.submit(spec(1, 0.0, vec![Access::read(d1)]));
        b.submit(spec(2, 0.0, vec![Access::read(d2)]));
        let g = b.build();
        let r = simulate(&g, &machine(3, 1));
        assert_eq!(r.messages, 2);
        // Transfers can't overlap on node 0's out port: makespan ~ 2 s.
        assert!((r.makespan - 2.0).abs() < 1e-9, "{}", r.makespan);
    }

    #[test]
    fn priorities_order_ready_tasks() {
        let mut b = GraphBuilder::new();
        let lo = b.add_data(0, 8);
        let hi = b.add_data(0, 8);
        let mut s_lo = spec(0, 1.0, vec![Access::write(lo)]);
        s_lo.priority = 0;
        let mut s_hi = spec(0, 1.0, vec![Access::write(hi)]);
        s_hi.priority = 10;
        b.submit(s_lo);
        b.submit(s_hi);
        // A reader of `hi` on another node: if `hi` runs first, its result
        // ships while `lo` computes, shortening the makespan.
        b.submit(spec(1, 1.0, vec![Access::read(hi)]));
        let g = b.build();
        let r = simulate(&g, &machine(2, 1));
        // hi at [0,1], transfer ~8ns, reader at [~1, ~2]; lo at [1,2].
        assert!(r.makespan < 2.5, "{}", r.makespan);
    }

    #[test]
    fn simulation_is_deterministic() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new();
        let data: Vec<_> = (0..20).map(|i| b.add_data(i % 3, 5000)).collect();
        for _ in 0..200 {
            let d = data[rng.gen_range(0..20usize)];
            let e = data[rng.gen_range(0..20usize)];
            let node = rng.gen_range(0..3);
            let mut acc = vec![Access::read(d)];
            if e != d {
                acc.push(Access::read_write(e));
            }
            b.submit(spec(node, rng.gen_range(0.001..0.01), acc));
        }
        let g = b.build();
        let m = machine(3, 2);
        let r1 = simulate(&g, &m);
        let r2 = simulate(&g, &m);
        assert_eq!(r1, r2);
        assert_eq!(r1.tasks, 200);
        // Makespan is bounded below by the critical path.
        assert!(r1.makespan >= g.critical_path() - 1e-9);
    }

    #[test]
    fn reused_simulator_matches_fresh_runs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = GraphBuilder::new();
        let data: Vec<_> = (0..16).map(|i| b.add_data(i % 4, 20_000)).collect();
        for _ in 0..150 {
            let d = data[rng.gen_range(0..16usize)];
            let e = data[rng.gen_range(0..16usize)];
            let node = rng.gen_range(0..4);
            let mut acc = vec![Access::read(d)];
            if e != d {
                acc.push(Access::read_write(e));
            }
            b.submit(spec(node, rng.gen_range(0.001..0.01), acc));
        }
        let g = b.build();

        // A spread of machine shapes, policies, and sourcing modes; the
        // reused simulator must agree with a fresh one on every run, in
        // every order.
        let mut configs = vec![machine(4, 2), machine(8, 1), machine(4, 3)];
        configs[1].scheduler = SchedulerPolicy::Lifo;
        configs[2].scheduler = SchedulerPolicy::Fifo;
        let mut nocache = machine(5, 2);
        nocache.replica_cache = false;
        configs.push(nocache);
        let mut relay = machine(6, 2);
        relay.source_selection = SourceSelection::AnyReplica;
        configs.push(relay);
        let mut hetero = machine(4, 1);
        hetero.per_node_workers = Some(vec![1, 3, 2, 1]);
        configs.push(hetero);

        let mut sim = Simulator::new(&g);
        for pass in 0..2 {
            for c in &configs {
                let reused = sim.run(c);
                let fresh = simulate(&g, c);
                assert_eq!(reused, fresh, "pass {pass} config {c:?}");
            }
        }
        // Traced runs agree too, and reset cleanly back to untraced.
        let (reused_report, reused_trace) = sim.run_traced(&configs[0]);
        let (fresh_report, fresh_trace) = simulate_traced(&g, &configs[0]);
        assert_eq!(reused_report, fresh_report);
        assert_eq!(reused_trace, fresh_trace);
        assert_eq!(sim.run(&configs[0]), fresh_report);
    }

    #[test]
    fn makespan_at_least_critical_path_and_work_bound() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for i in 0..6 {
            b.submit(spec(i % 2, 1.0, vec![Access::read_write(d)]));
        }
        let g = b.build();
        let m = machine(2, 1);
        let r = simulate(&g, &m);
        assert!(r.makespan >= g.critical_path() - 1e-9);
        assert!(r.makespan >= g.sequential_time() / 2.0 - 1e-9);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::config::SchedulerPolicy;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, priority: i64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: 0.0,
            priority,
            label: "k",
            accesses,
        }
    }

    fn one_node_machine(policy: SchedulerPolicy) -> MachineConfig {
        let mut m = MachineConfig::test_machine(1, 1);
        m.scheduler = policy;
        m
    }

    /// Three independent tasks with priorities 1, 3, 2 on a single worker.
    fn priority_graph() -> TaskGraph {
        let mut b = GraphBuilder::new();
        for p in [1i64, 3, 2] {
            let d = b.add_data(0, 8);
            b.submit(spec(0, 1.0, p, vec![Access::write(d)]));
        }
        b.build()
    }

    #[test]
    fn priority_policy_runs_high_priority_first() {
        let g = priority_graph();
        let (_, trace) = simulate_traced(&g, &one_node_machine(SchedulerPolicy::Priority));
        let order: Vec<TaskId> = trace.iter().map(|s| s.task).collect();
        assert_eq!(order, vec![1, 2, 0], "highest priority first");
    }

    #[test]
    fn fifo_policy_runs_in_submission_order() {
        let g = priority_graph();
        let (_, trace) = simulate_traced(&g, &one_node_machine(SchedulerPolicy::Fifo));
        let order: Vec<TaskId> = trace.iter().map(|s| s.task).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn lifo_policy_runs_most_recent_first() {
        let g = priority_graph();
        let (_, trace) = simulate_traced(&g, &one_node_machine(SchedulerPolicy::Lifo));
        let order: Vec<TaskId> = trace.iter().map(|s| s.task).collect();
        // All three become ready together at t = 0 in submission order, so
        // LIFO pops the last submitted first.
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn trace_spans_are_consistent() {
        // Random-ish graph; validate span invariants:
        // one span per task, end = start + duration, no worker
        // over-subscription on any node.
        let mut b = GraphBuilder::new();
        let d: Vec<_> = (0..4).map(|i| b.add_data(i % 2, 64)).collect();
        for i in 0..30usize {
            b.submit(spec(
                (i % 2) as NodeId,
                0.5 + (i % 3) as f64 * 0.25,
                0,
                vec![Access::read(d[i % 4]), Access::read_write(d[(i + 1) % 4])],
            ));
        }
        let g = b.build();
        let workers = 2u32;
        let (report, trace) = simulate_traced(&g, &MachineConfig::test_machine(2, workers));
        assert_eq!(trace.len(), g.n_tasks());
        let mut seen = vec![false; g.n_tasks()];
        for span in &trace {
            assert!(!seen[span.task as usize], "duplicate span");
            seen[span.task as usize] = true;
            assert!(span.end <= report.makespan + 1e-12);
            assert!(span.start >= 0.0);
        }
        // Over-subscription check: at each span start, count overlapping
        // spans on the same node.
        for s in &trace {
            let overlapping = trace
                .iter()
                .filter(|o| o.node == s.node && o.start < s.end - 1e-15 && s.start < o.end - 1e-15)
                .count();
            assert!(
                overlapping <= workers as usize,
                "node {} runs {} tasks concurrently",
                s.node,
                overlapping
            );
        }
    }

    #[test]
    fn traced_report_equals_untraced() {
        let g = priority_graph();
        let m = one_node_machine(SchedulerPolicy::Priority);
        let (traced, _) = simulate_traced(&g, &m);
        let plain = simulate(&g, &m);
        assert_eq!(traced, plain);
    }

    #[test]
    fn heterogeneous_workers_shift_load() {
        // 8 independent unit tasks on each of 2 nodes; node 1 has 4 workers,
        // node 0 has 1: node 0 takes 8 s, node 1 takes 2 s.
        let mut b = GraphBuilder::new();
        for node in 0..2u32 {
            for _ in 0..8 {
                let d = b.add_data(node, 8);
                b.submit(spec(node, 1.0, 0, vec![Access::write(d)]));
            }
        }
        let g = b.build();
        let mut m = MachineConfig::test_machine(2, 1);
        m.per_node_workers = Some(vec![1, 4]);
        let r = simulate(&g, &m);
        assert!((r.makespan - 8.0).abs() < 1e-9, "{}", r.makespan);
        assert_eq!(r.total_workers, 5);
        // Same graph on uniform 4-worker nodes: 2 s.
        let uniform = MachineConfig::test_machine(2, 4);
        assert!((simulate(&g, &uniform).makespan - 2.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod memory_and_source_tests {
    use super::*;
    use crate::config::SourceSelection;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: 0.0,
            priority: 0,
            label: "k",
            accesses,
        }
    }

    #[test]
    fn peak_memory_counts_home_data() {
        let mut b = GraphBuilder::new();
        b.add_data(0, 1000);
        b.add_data(0, 500);
        b.add_data(1, 200);
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(2, 1));
        assert_eq!(r.peak_memory_per_node, vec![1500, 200]);
        assert_eq!(r.max_peak_memory(), 1500);
    }

    #[test]
    fn replicas_raise_peak_until_invalidated() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        let s = b.add_data(1, 10);
        b.submit(spec(0, 1.0, vec![Access::write(d)]));
        // Node 1 reads d: gains a 1000-byte replica.
        b.submit(spec(1, 1.0, vec![Access::read(d), Access::write(s)]));
        // Node 0 rewrites d: node 1's replica is invalidated, but the peak
        // remembers it.
        b.submit(spec(0, 1.0, vec![Access::read_write(d)]));
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(2, 1));
        assert_eq!(r.peak_memory_per_node[1], 10 + 1000);
        assert_eq!(r.peak_memory_per_node[0], 1000);
    }

    #[test]
    fn any_replica_sourcing_relieves_the_producer_port() {
        // One producer, many consumers on distinct nodes, long transfers:
        // with Holder sourcing all transfers serialize on node 0's port;
        // with AnyReplica later consumers fetch from earlier receivers.
        let consumers = 6u32;
        let build = || {
            let mut b = GraphBuilder::new();
            let d = b.add_data(0, 1_000_000_000); // 1 s per hop at 1 GB/s
            b.submit(spec(0, 0.001, vec![Access::write(d)]));
            for n in 1..=consumers {
                b.submit(spec(n, 0.001, vec![Access::read(d)]));
            }
            b.build()
        };
        let g = build();
        let mut holder_cfg = MachineConfig::test_machine(consumers + 1, 1);
        holder_cfg.latency = 0.0;
        let mut relay_cfg = holder_cfg.clone();
        relay_cfg.source_selection = SourceSelection::AnyReplica;

        let serial = simulate(&g, &holder_cfg);
        let relayed = simulate(&g, &relay_cfg);
        // Serial: ~consumers seconds; relayed: ~log2(consumers+1) rounds.
        assert!(
            serial.makespan > consumers as f64 * 0.9,
            "{}",
            serial.makespan
        );
        assert!(
            relayed.makespan < serial.makespan * 0.7,
            "relay {} !<< serial {}",
            relayed.makespan,
            serial.makespan
        );
        // Same number of messages either way: relaying moves sources, not
        // volume.
        assert_eq!(serial.messages, relayed.messages);
    }

    #[test]
    fn replica_bitset_tracks_many_nodes() {
        // 130 nodes exercises multi-word replica sets (words_per_set = 3):
        // a tile broadcast to nodes in every word, then invalidated by a
        // write, must count one message per consumer and free all replicas.
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        for n in [1u32, 63, 64, 65, 129] {
            let s = b.add_data(n, 8);
            b.submit(spec(n, 0.01, vec![Access::read(d), Access::write(s)]));
        }
        b.submit(spec(0, 0.01, vec![Access::read_write(d)]));
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(130, 1));
        assert_eq!(r.messages, 5);
        // After the invalidating write, only home data remains anywhere.
        for n in [1usize, 63, 64, 65, 129] {
            assert_eq!(r.peak_memory_per_node[n], 8 + 1000);
        }
    }
}

#[cfg(test)]
mod extreme_machine_tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn two_node_graph() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(TaskSpec {
            node: 0,
            duration: 1.0,
            flops: 1e9,
            priority: 0,
            label: "w",
            accesses: vec![Access::write(d)],
        });
        b.submit(TaskSpec {
            node: 1,
            duration: 1.0,
            flops: 1e9,
            priority: 0,
            label: "r",
            accesses: vec![Access::read(d)],
        });
        b.build()
    }

    #[test]
    fn infinite_bandwidth_leaves_only_latency() {
        let g = two_node_graph();
        let mut m = MachineConfig::test_machine(2, 1);
        m.bandwidth = f64::INFINITY;
        m.latency = 0.25;
        let r = simulate(&g, &m);
        assert!((r.makespan - 2.25).abs() < 1e-12, "{}", r.makespan);
    }

    #[test]
    fn zero_latency_leaves_only_bandwidth() {
        let g = two_node_graph();
        let mut m = MachineConfig::test_machine(2, 1);
        m.latency = 0.0;
        m.bandwidth = 2000.0; // 0.5 s for 1000 bytes
        let r = simulate(&g, &m);
        assert!((r.makespan - 2.5).abs() < 1e-12, "{}", r.makespan);
    }

    #[test]
    fn tiny_bandwidth_makes_comm_dominate() {
        let g = two_node_graph();
        let mut m = MachineConfig::test_machine(2, 1);
        m.latency = 0.0;
        m.bandwidth = 10.0; // 100 s transfer
        let r = simulate(&g, &m);
        assert!(r.makespan > 100.0);
        // Work accounting is unaffected by comm time.
        assert!((r.busy_per_node.iter().sum::<f64>() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn network_models_preserve_counts_on_extreme_machines() {
        let g = two_node_graph();
        for net in [
            crate::NetworkModel::SharedBandwidth,
            crate::NetworkModel::Hierarchical(crate::HierarchicalTopology::new(1)),
        ] {
            let mut m = MachineConfig::test_machine(2, 1);
            m.network = net;
            let r = simulate(&g, &m);
            assert_eq!(r.messages, 1);
            assert_eq!(r.bytes_sent, 1000);
        }
    }

    #[test]
    fn zero_duration_tasks_complete_instantly() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for _ in 0..50 {
            b.submit(TaskSpec {
                node: 0,
                duration: 0.0,
                flops: 0.0,
                priority: 0,
                label: "z",
                accesses: vec![Access::read_write(d)],
            });
        }
        let g = b.build();
        let r = simulate(&g, &MachineConfig::test_machine(1, 1));
        assert_eq!(r.tasks, 50);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.gflops(), 0.0);
    }
}

#[cfg(test)]
mod network_model_tests {
    use super::*;
    use crate::config::{HierarchicalTopology, NetworkModel, SourceSelection};
    use crate::graph::{Access, GraphBuilder, TaskSpec};

    fn spec(node: NodeId, duration: f64, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration,
            flops: 0.0,
            priority: 0,
            label: "k",
            accesses,
        }
    }

    fn machine(nodes: u32, net: NetworkModel) -> MachineConfig {
        let mut m = MachineConfig::test_machine(nodes, 1);
        m.latency = 0.0;
        m.bandwidth = 1e9;
        m.network = net;
        m
    }

    /// Three 1-second flows starting together: 0→1, 0→2, 3→2. Port
    /// serialization chains them (~3 s); max-min sharing runs all three at
    /// rate 0.5 (~2 s).
    fn overlap_graph() -> TaskGraph {
        let mut b = GraphBuilder::new();
        let d1 = b.add_data(0, 1_000_000_000);
        let d2 = b.add_data(0, 1_000_000_000);
        let d3 = b.add_data(3, 1_000_000_000);
        b.submit(spec(1, 0.0, vec![Access::read(d1)]));
        b.submit(spec(2, 0.0, vec![Access::read(d2)]));
        b.submit(spec(2, 0.0, vec![Access::read(d3)]));
        b.build()
    }

    #[test]
    fn shared_bandwidth_overlaps_where_serialization_chains() {
        let g = overlap_graph();
        let serial = simulate(&g, &machine(4, NetworkModel::Constant));
        let shared = simulate(&g, &machine(4, NetworkModel::SharedBandwidth));
        assert!((serial.makespan - 3.0).abs() < 1e-9, "{}", serial.makespan);
        assert!((shared.makespan - 2.0).abs() < 1e-9, "{}", shared.makespan);
        // Counts and volumes are model-invariant.
        assert_eq!(serial.messages, shared.messages);
        assert_eq!(serial.bytes_sent, shared.bytes_sent);
    }

    #[test]
    fn link_traffic_is_model_invariant() {
        let g = overlap_graph();
        let mut sim = Simulator::new(&g);
        let mut expected = None;
        for net in [
            NetworkModel::Constant,
            NetworkModel::SharedBandwidth,
            NetworkModel::Hierarchical(HierarchicalTopology::new(2)),
        ] {
            let _ = sim.run(&machine(4, net));
            let links = sim.link_traffic();
            let msgs: u64 = links.iter().map(|l| l.messages).sum();
            assert_eq!(msgs, 3);
            match &expected {
                None => expected = Some(links),
                Some(e) => assert_eq!(e, &links),
            }
        }
        let links = expected.unwrap();
        assert_eq!((links[0].from, links[0].to), (0, 1));
        assert_eq!((links[1].from, links[1].to), (0, 2));
        assert_eq!((links[2].from, links[2].to), (3, 2));
        assert!(links.iter().all(|l| l.bytes == 1_000_000_000));
    }

    #[test]
    fn one_switch_hierarchy_equals_flat_sharing() {
        let g = overlap_graph();
        let shared = simulate(&g, &machine(4, NetworkModel::SharedBandwidth));
        let hier = simulate(
            &g,
            &machine(4, NetworkModel::Hierarchical(HierarchicalTopology::new(1))),
        );
        assert_eq!(shared, hier);
    }

    #[test]
    fn nic_limit_one_serializes_like_the_constant_model() {
        // Two transfers out of one sender: with at most one flow per NIC
        // direction, the fluid model degenerates to port serialization.
        let mut b = GraphBuilder::new();
        let d1 = b.add_data(0, 1_000_000_000);
        let d2 = b.add_data(0, 1_000_000_000);
        b.submit(spec(1, 0.0, vec![Access::read(d1)]));
        b.submit(spec(2, 0.0, vec![Access::read(d2)]));
        let g = b.build();
        let mut topo = HierarchicalTopology::new(1);
        topo.nic_limit = 1;
        let constant = simulate(&g, &machine(3, NetworkModel::Constant));
        let limited = simulate(&g, &machine(3, NetworkModel::Hierarchical(topo)));
        assert!(
            (limited.makespan - constant.makespan).abs() < 1e-12,
            "limited {} vs constant {}",
            limited.makespan,
            constant.makespan
        );
    }

    #[test]
    fn uplink_bottleneck_stretches_cross_switch_traffic() {
        // Four disjoint cross-switch transfers. Switch map [0,0,0,0,1,1,1,1];
        // senders on switch 0, receivers on switch 1. With a wide uplink all
        // run at full rate (1 s); with a 1.0-capacity uplink they share it
        // (4 s).
        let build = || {
            let mut b = GraphBuilder::new();
            for i in 0..4u32 {
                let d = b.add_data(i, 1_000_000_000);
                b.submit(spec(4 + i, 0.0, vec![Access::read(d)]));
            }
            b.build()
        };
        let g = build();
        let mut wide = HierarchicalTopology::new(2);
        wide.switch_map = Some(vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let mut narrow = wide.clone();
        narrow.uplink_capacity = 1.0;
        let fast = simulate(&g, &machine(8, NetworkModel::Hierarchical(wide)));
        let slow = simulate(&g, &machine(8, NetworkModel::Hierarchical(narrow)));
        assert!((fast.makespan - 1.0).abs() < 1e-9, "{}", fast.makespan);
        assert!((slow.makespan - 4.0).abs() < 1e-9, "{}", slow.makespan);
        assert_eq!(fast.messages, slow.messages);
        assert_eq!(fast.bytes_sent, slow.bytes_sent);
    }

    #[test]
    fn unreachable_pair_is_a_typed_no_route_naming_both_endpoints() {
        // Mirrors net/tests/negative.rs: node 2's switch has no uplink, so
        // the cross-switch read 0 → 2 has no route; the error is typed and
        // names both endpoints and the topology variant.
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(2, 0.0, vec![Access::read(d)]));
        let g = b.build();
        let mut topo = HierarchicalTopology::new(2);
        topo.switch_map = Some(vec![0, 0, 1, 1]);
        topo.uplinked = Some(vec![true, false]);
        let m = machine(4, NetworkModel::Hierarchical(topo.clone()));
        let err = Simulator::new(&g).try_run(&m).unwrap_err();
        assert_eq!(
            err,
            crate::netmodel::SimNetError::NoRoute {
                from: 0,
                to: 2,
                topology: "hierarchical"
            }
        );
        assert_eq!(
            err.to_string(),
            "topology (hierarchical) has no link from rank 0 to rank 2"
        );
        // Same-switch traffic still flows on the very same topology.
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(1, 0.0, vec![Access::read(d)]));
        let g = b.build();
        let m = machine(4, NetworkModel::Hierarchical(topo));
        let r = Simulator::new(&g).try_run(&m).unwrap();
        assert_eq!(r.messages, 1);
    }

    #[test]
    #[should_panic(expected = "no link from rank 0 to rank 2")]
    fn run_panics_on_no_route_with_the_typed_message() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1000);
        b.submit(spec(2, 0.0, vec![Access::read(d)]));
        let g = b.build();
        let mut topo = HierarchicalTopology::new(2);
        topo.switch_map = Some(vec![0, 0, 1, 1]);
        topo.uplinked = Some(vec![false, false]);
        let _ = simulate(&g, &machine(4, NetworkModel::Hierarchical(topo)));
    }

    #[test]
    fn contended_any_replica_relays_from_receivers() {
        let consumers = 6u32;
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 1_000_000_000);
        b.submit(spec(0, 0.001, vec![Access::write(d)]));
        for n in 1..=consumers {
            b.submit(spec(n, 0.001, vec![Access::read(d)]));
        }
        let g = b.build();
        let mut holder = machine(consumers + 1, NetworkModel::SharedBandwidth);
        let mut relay = holder.clone();
        relay.source_selection = SourceSelection::AnyReplica;
        holder.source_selection = SourceSelection::Holder;
        let serial = simulate(&g, &holder);
        let relayed = simulate(&g, &relay);
        assert_eq!(serial.messages, relayed.messages);
        assert!(
            relayed.makespan < serial.makespan,
            "relay {} !< holder {}",
            relayed.makespan,
            serial.makespan
        );
    }

    #[test]
    fn contended_runs_are_deterministic_and_reusable() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut b = GraphBuilder::new();
        let data: Vec<_> = (0..20).map(|i| b.add_data(i % 5, 400_000)).collect();
        for _ in 0..150 {
            let d = data[rng.gen_range(0..20usize)];
            let e = data[rng.gen_range(0..20usize)];
            let node = rng.gen_range(0..5);
            let mut acc = vec![Access::read(d)];
            if e != d {
                acc.push(Access::read_write(e));
            }
            b.submit(spec(node, rng.gen_range(0.0001..0.001), acc));
        }
        let g = b.build();
        let configs = [
            machine(5, NetworkModel::Constant),
            machine(5, NetworkModel::SharedBandwidth),
            machine(5, NetworkModel::Hierarchical(HierarchicalTopology::new(2))),
        ];
        let mut sim = Simulator::new(&g);
        for c in &configs {
            let reused = sim.run(c);
            let fresh = simulate(&g, c);
            assert_eq!(reused, fresh, "{:?}", c.network);
            assert_eq!(reused, simulate(&g, c), "determinism {:?}", c.network);
        }
        // Counts agree across all three models on a nontrivial graph.
        let reports: Vec<_> = configs.iter().map(|c| simulate(&g, c)).collect();
        assert_eq!(reports[0].messages, reports[1].messages);
        assert_eq!(reports[0].messages, reports[2].messages);
        assert_eq!(reports[0].bytes_sent, reports[1].bytes_sent);
        assert_eq!(reports[0].bytes_sent, reports[2].bytes_sent);
        // And the constant model is unaffected by interleaved contended
        // runs through the same reused simulator.
        assert_eq!(sim.run(&configs[0]), reports[0]);
    }
}
