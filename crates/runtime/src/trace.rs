//! JSON serialization of simulation traces.
//!
//! Mirrors the format of `flexdist-factor`'s executor traces so the same
//! tooling can consume both: a top-level object with a `kind`
//! discriminator, summary counters, and a `spans` array with one entry
//! per executed task.

use crate::report::SimReport;
use crate::sim::TaskSpan;
use flexdist_json::Value;

/// Serialize task spans as the common `spans` array shared by the
/// `sim-trace`, `exec-trace` and `net-trace` JSON formats (one object per
/// span with `task`/`node`/`worker`/`label`/`start`/`end`).
#[must_use]
pub fn spans_to_json(trace: &[TaskSpan]) -> Value {
    Value::Array(
        trace
            .iter()
            .map(|s| {
                flexdist_json::object(vec![
                    ("task", Value::from(s.task)),
                    ("node", Value::from(s.node)),
                    ("worker", Value::from(s.worker)),
                    ("label", Value::from(s.label)),
                    ("start", Value::from(s.start)),
                    ("end", Value::from(s.end)),
                ])
            })
            .collect(),
    )
}

/// Serialize a simulation trace (plus its report's summary counters) to a
/// JSON value parseable by `flexdist_json::parse`.
#[must_use]
pub fn sim_trace_to_json(trace: &[TaskSpan], report: &SimReport) -> Value {
    let spans = spans_to_json(trace);
    flexdist_json::object(vec![
        ("kind", Value::from("sim-trace")),
        ("makespan", Value::from(report.makespan)),
        ("tasks", Value::from(report.tasks)),
        ("messages", Value::from(report.messages)),
        ("bytes_sent", Value::from(report.bytes_sent)),
        (
            "peak_ready_per_node",
            Value::Array(
                report
                    .peak_ready_per_node
                    .iter()
                    .map(|&q| Value::from(q))
                    .collect(),
            ),
        ),
        (
            "idle_per_node",
            Value::Array(
                report
                    .idle_per_node
                    .iter()
                    .map(|&s| Value::from(s))
                    .collect(),
            ),
        ),
        ("spans", spans),
    ])
}

/// Pretty-printed form of [`sim_trace_to_json`].
#[must_use]
pub fn sim_trace_to_json_string(trace: &[TaskSpan], report: &SimReport) -> String {
    sim_trace_to_json(trace, report).to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};
    use crate::sim::simulate_traced;
    use crate::MachineConfig;

    #[test]
    fn sim_trace_round_trips_through_parser() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for _ in 0..3 {
            b.submit(TaskSpec {
                node: 0,
                duration: 1.0,
                flops: 1e9,
                priority: 0,
                label: "potrf",
                accesses: vec![Access::read_write(d)],
            });
        }
        let g = b.build();
        let m = MachineConfig::test_machine(1, 1);
        let (report, trace) = simulate_traced(&g, &m);
        let json = sim_trace_to_json_string(&trace, &report);
        let doc = flexdist_json::parse(&json).expect("trace JSON parses");
        assert_eq!(doc.get("kind").and_then(Value::as_str), Some("sim-trace"));
        let spans = doc.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].get("label").and_then(Value::as_str), Some("potrf"));
        // Worker slots and timestamps survive serialization.
        assert!(spans.iter().all(|s| s.get("worker").is_some()));
        assert_eq!(
            doc.get("makespan").and_then(Value::as_f64),
            Some(report.makespan)
        );
    }
}
