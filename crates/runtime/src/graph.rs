//! Task-graph construction with sequential-task-flow dependency inference.

use crate::{DataId, NodeId, TaskId};

/// How a task touches a datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read only — the datum must be (fetched and) valid on the task's node.
    Read,
    /// Write only — previous contents are overwritten, no fetch needed.
    Write,
    /// Read-modify-write.
    ReadWrite,
}

/// One declared access of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// The datum.
    pub data: DataId,
    /// The mode.
    pub mode: AccessMode,
}

impl Access {
    /// Shorthand for a read access.
    #[must_use]
    pub fn read(data: DataId) -> Self {
        Self {
            data,
            mode: AccessMode::Read,
        }
    }

    /// Shorthand for a write access.
    #[must_use]
    pub fn write(data: DataId) -> Self {
        Self {
            data,
            mode: AccessMode::Write,
        }
    }

    /// Shorthand for a read-write access.
    #[must_use]
    pub fn read_write(data: DataId) -> Self {
        Self {
            data,
            mode: AccessMode::ReadWrite,
        }
    }
}

/// A task as submitted by the application layer.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Executing node (owner-computes: the owner of the written tile).
    pub node: NodeId,
    /// Wall-clock duration on one worker core, in seconds.
    pub duration: f64,
    /// Flops performed (for throughput accounting).
    pub flops: f64,
    /// Scheduling priority; larger runs earlier among ready tasks.
    pub priority: i64,
    /// Display label (kernel name).
    pub label: &'static str,
    /// Declared data accesses.
    pub accesses: Vec<Access>,
}

/// Fully-built immutable task graph.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) data_owner: Vec<NodeId>,
    pub(crate) data_bytes: Vec<u64>,
}

#[derive(Debug, Clone)]
pub(crate) struct Task {
    pub(crate) node: NodeId,
    pub(crate) duration: f64,
    pub(crate) flops: f64,
    pub(crate) priority: i64,
    pub(crate) label: &'static str,
    pub(crate) reads: Vec<DataId>,
    pub(crate) writes: Vec<DataId>,
    pub(crate) successors: Vec<TaskId>,
    pub(crate) n_deps: u32,
}

impl TaskGraph {
    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of registered data handles.
    #[must_use]
    pub fn n_data(&self) -> usize {
        self.data_owner.len()
    }

    /// Total flops across all tasks.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.tasks.iter().map(|t| t.flops).sum()
    }

    /// Sum of task durations (sequential execution time).
    #[must_use]
    pub fn sequential_time(&self) -> f64 {
        self.tasks.iter().map(|t| t.duration).sum()
    }

    /// Critical-path length in seconds (longest dependency chain), a lower
    /// bound on any schedule's makespan.
    #[must_use]
    pub fn critical_path(&self) -> f64 {
        // Tasks are topologically ordered by construction (dependencies
        // always point from lower to higher ids in an STF submission).
        let mut finish = vec![0.0f64; self.tasks.len()];
        let mut best = 0.0f64;
        for (id, t) in self.tasks.iter().enumerate() {
            let f = finish[id] + t.duration;
            best = best.max(f);
            for &s in &t.successors {
                let slot = &mut finish[s as usize];
                if *slot < f {
                    *slot = f;
                }
            }
        }
        best
    }

    /// Number of dependency edges.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.tasks.iter().map(|t| t.successors.len()).sum()
    }

    /// Successor task ids of `id` (edges inferred at submission).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn successors_of(&self, id: TaskId) -> &[TaskId] {
        &self.tasks[id as usize].successors
    }

    /// Number of predecessors of `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn n_deps_of(&self, id: TaskId) -> u32 {
        self.tasks[id as usize].n_deps
    }

    /// Executing node of `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn node_of(&self, id: TaskId) -> NodeId {
        self.tasks[id as usize].node
    }

    /// Home node of datum `d`.
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    #[must_use]
    pub fn data_owner(&self, d: DataId) -> NodeId {
        self.data_owner[d as usize]
    }

    /// Data read by task `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn reads_of(&self, id: TaskId) -> &[DataId] {
        &self.tasks[id as usize].reads
    }

    /// Data written by task `id` (W and RW accesses).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn writes_of(&self, id: TaskId) -> &[DataId] {
        &self.tasks[id as usize].writes
    }

    /// Scheduling priority of `id` (larger runs earlier among ready tasks).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn priority_of(&self, id: TaskId) -> i64 {
        self.tasks[id as usize].priority
    }

    /// Display label (kernel name) of `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn label_of(&self, id: TaskId) -> &'static str {
        self.tasks[id as usize].label
    }

    /// Simulated duration of `id` in seconds.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn duration_of(&self, id: TaskId) -> f64 {
        self.tasks[id as usize].duration
    }
}

/// Per-datum hazard-tracking state during submission.
#[derive(Debug, Clone, Default)]
struct DataState {
    last_writer: Option<TaskId>,
    readers_since_write: Vec<TaskId>,
}

/// Builds a [`TaskGraph`] by sequential submission, inferring RAW, WAR and
/// WAW dependencies exactly as a sequential-task-flow runtime does.
///
/// ```
/// use flexdist_runtime::{Access, GraphBuilder, TaskSpec};
///
/// let mut b = GraphBuilder::new();
/// let tile = b.add_data(0, 8 * 500 * 500);
/// let producer = b.submit(TaskSpec {
///     node: 0, duration: 1e-3, flops: 1e6, priority: 1,
///     label: "potrf", accesses: vec![Access::read_write(tile)],
/// });
/// let consumer = b.submit(TaskSpec {
///     node: 1, duration: 2e-3, flops: 2e6, priority: 0,
///     label: "trsm", accesses: vec![Access::read(tile)],
/// });
/// let graph = b.build();
/// assert_eq!(graph.successors_of(producer), &[consumer]);
/// assert_eq!(graph.n_deps_of(consumer), 1);
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    tasks: Vec<Task>,
    data_owner: Vec<NodeId>,
    data_bytes: Vec<u64>,
    state: Vec<DataState>,
}

impl GraphBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a datum with its home node and size in bytes.
    pub fn add_data(&mut self, owner: NodeId, bytes: u64) -> DataId {
        let id = self.data_owner.len() as DataId;
        self.data_owner.push(owner);
        self.data_bytes.push(bytes);
        self.state.push(DataState::default());
        id
    }

    /// Submit the next task in program order. Returns its id.
    ///
    /// # Panics
    /// Panics if the spec references an unregistered datum or has a negative
    /// duration.
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        assert!(spec.duration >= 0.0, "negative task duration");
        let id = self.tasks.len() as TaskId;
        let mut deps: Vec<TaskId> = Vec::new();
        let mut reads = Vec::new();
        let mut writes = Vec::new();

        for access in &spec.accesses {
            let d = access.data as usize;
            assert!(d < self.state.len(), "unregistered datum {d}");
            match access.mode {
                AccessMode::Read => {
                    // RAW: run after the value's producer.
                    if let Some(w) = self.state[d].last_writer {
                        deps.push(w);
                    }
                    self.state[d].readers_since_write.push(id);
                    reads.push(access.data);
                }
                AccessMode::Write | AccessMode::ReadWrite => {
                    let st = &mut self.state[d];
                    // WAW.
                    if let Some(w) = st.last_writer {
                        deps.push(w);
                    }
                    // WAR: wait for every reader of the previous version.
                    deps.append(&mut st.readers_since_write);
                    st.last_writer = Some(id);
                    if access.mode == AccessMode::ReadWrite {
                        reads.push(access.data);
                    }
                    writes.push(access.data);
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|&p| p != id);
        let n_deps = deps.len() as u32;
        for p in deps {
            self.tasks[p as usize].successors.push(id);
        }
        self.tasks.push(Task {
            node: spec.node,
            duration: spec.duration,
            flops: spec.flops,
            priority: spec.priority,
            label: spec.label,
            reads,
            writes,
            successors: Vec::new(),
            n_deps,
        });
        id
    }

    /// Finalize the graph.
    #[must_use]
    pub fn build(self) -> TaskGraph {
        TaskGraph {
            tasks: self.tasks,
            data_owner: self.data_owner,
            data_bytes: self.data_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(node: NodeId, accesses: Vec<Access>) -> TaskSpec {
        TaskSpec {
            node,
            duration: 1.0,
            flops: 1.0,
            priority: 0,
            label: "t",
            accesses,
        }
    }

    #[test]
    fn raw_dependency() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        let w = b.submit(spec(0, vec![Access::write(d)]));
        let r = b.submit(spec(0, vec![Access::read(d)]));
        let g = b.build();
        assert_eq!(g.tasks[w as usize].successors, vec![r]);
        assert_eq!(g.tasks[r as usize].n_deps, 1);
    }

    #[test]
    fn war_dependency() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        b.submit(spec(0, vec![Access::write(d)]));
        let r = b.submit(spec(0, vec![Access::read(d)]));
        let w2 = b.submit(spec(0, vec![Access::write(d)]));
        let g = b.build();
        // w2 depends on both the first writer (WAW) and the reader (WAR).
        assert!(g.tasks[r as usize].successors.contains(&w2));
        assert_eq!(g.tasks[w2 as usize].n_deps, 2);
    }

    #[test]
    fn waw_dependency_chains() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        let w1 = b.submit(spec(0, vec![Access::write(d)]));
        let w2 = b.submit(spec(0, vec![Access::write(d)]));
        let w3 = b.submit(spec(0, vec![Access::write(d)]));
        let g = b.build();
        assert_eq!(g.tasks[w1 as usize].successors, vec![w2]);
        assert_eq!(g.tasks[w2 as usize].successors, vec![w3]);
    }

    #[test]
    fn independent_readers_do_not_depend_on_each_other() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        let w = b.submit(spec(0, vec![Access::write(d)]));
        let r1 = b.submit(spec(1, vec![Access::read(d)]));
        let r2 = b.submit(spec(2, vec![Access::read(d)]));
        let g = b.build();
        assert_eq!(g.tasks[w as usize].successors, vec![r1, r2]);
        assert!(g.tasks[r1 as usize].successors.is_empty());
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn duplicate_deps_collapse() {
        let mut b = GraphBuilder::new();
        let d1 = b.add_data(0, 8);
        let d2 = b.add_data(0, 8);
        let w = b.submit(spec(0, vec![Access::write(d1), Access::write(d2)]));
        let r = b.submit(spec(0, vec![Access::read(d1), Access::read(d2)]));
        let g = b.build();
        // Two shared data, but only one edge.
        assert_eq!(g.tasks[w as usize].successors, vec![r]);
        assert_eq!(g.tasks[r as usize].n_deps, 1);
    }

    #[test]
    fn read_write_reads_previous_version() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        let w = b.submit(spec(0, vec![Access::write(d)]));
        let rw = b.submit(spec(0, vec![Access::read_write(d)]));
        let g = b.build();
        assert_eq!(g.tasks[w as usize].successors, vec![rw]);
        assert_eq!(g.tasks[rw as usize].reads, vec![d]);
        assert_eq!(g.tasks[rw as usize].writes, vec![d]);
    }

    #[test]
    fn critical_path_of_chain_and_diamond() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        for _ in 0..4 {
            b.submit(spec(0, vec![Access::read_write(d)]));
        }
        let g = b.build();
        assert!((g.critical_path() - 4.0).abs() < 1e-12);
        assert!((g.sequential_time() - 4.0).abs() < 1e-12);

        // Diamond: w -> (r1, r2) -> w2. Critical path = 3 tasks.
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 8);
        b.submit(spec(0, vec![Access::write(d)]));
        b.submit(spec(1, vec![Access::read(d)]));
        b.submit(spec(2, vec![Access::read(d)]));
        b.submit(spec(0, vec![Access::write(d)]));
        let g = b.build();
        assert!((g.critical_path() - 3.0).abs() < 1e-12);
        assert!((g.sequential_time() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn totals_accumulate() {
        let mut b = GraphBuilder::new();
        let d = b.add_data(0, 64);
        b.submit(TaskSpec {
            node: 0,
            duration: 0.5,
            flops: 100.0,
            priority: 3,
            label: "x",
            accesses: vec![Access::write(d)],
        });
        let g = b.build();
        assert_eq!(g.n_tasks(), 1);
        assert_eq!(g.n_data(), 1);
        assert_eq!(g.total_flops(), 100.0);
    }
}
