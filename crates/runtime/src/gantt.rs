//! ASCII Gantt rendering of execution traces.
//!
//! Turns the [`TaskSpan`](crate::TaskSpan) stream of
//! [`simulate_traced`](crate::simulate_traced) into a terminal-friendly
//! utilization chart: one row per node, time binned across the width,
//! shading by the fraction of the node's workers busy in each bin.

use crate::sim::TaskSpan;
use crate::MachineConfig;

/// Shading ramp from idle to fully busy.
const RAMP: [char; 5] = [' ', '.', ':', 'x', '#'];

/// The bins a span `[start, end)` overlaps, under half-open binning: bin
/// `k` covers `[k·bin_w, (k+1)·bin_w)`. Returns `None` for zero-width
/// spans — a span ending exactly where it starts occupies no bin, and a
/// span ending exactly on a bin edge does not bleed into the next bin.
/// Both renderers share this so node-level and lane-level charts agree.
fn bin_range(start: f64, end: f64, bin_w: f64, width: usize) -> Option<(usize, usize)> {
    if end <= start {
        return None;
    }
    let first = ((start / bin_w) as usize).min(width - 1);
    let last = ((end / bin_w).ceil() as usize - 1).clamp(first, width - 1);
    Some((first, last))
}

/// Render the trace as one text row per node, `width` characters of
/// timeline each, plus a time axis. Shading reflects worker occupancy:
/// `' '` idle, `'#'` all workers busy.
///
/// # Panics
/// Panics if `width == 0`.
#[must_use]
pub fn render_gantt(trace: &[TaskSpan], config: &MachineConfig, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let makespan = trace.iter().fold(0.0f64, |m, s| m.max(s.end));
    let n_nodes = config.nodes as usize;
    let mut out = String::new();
    if makespan <= 0.0 {
        out.push_str("(empty trace)\n");
        return out;
    }
    // busy[node][bin] = worker-seconds inside the bin.
    let bin_w = makespan / width as f64;
    let mut busy = vec![vec![0.0f64; width]; n_nodes];
    for span in trace {
        let Some((first, last)) = bin_range(span.start, span.end, bin_w, width) else {
            continue;
        };
        for (bin, busy_bin) in busy[span.node as usize]
            .iter_mut()
            .enumerate()
            .take(last + 1)
            .skip(first)
        {
            let lo = (bin as f64 * bin_w).max(span.start);
            let hi = ((bin + 1) as f64 * bin_w).min(span.end);
            if hi > lo {
                *busy_bin += hi - lo;
            }
        }
    }
    for (node, row) in busy.iter().enumerate() {
        let workers = f64::from(config.workers_of(node as u32));
        out.push_str(&format!("node {node:>3} |"));
        for &b in row {
            let frac = (b / (bin_w * workers)).clamp(0.0, 1.0);
            let idx = (frac * (RAMP.len() - 1) as f64).round() as usize;
            out.push(RAMP[idx]);
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "{:>9}0{}{makespan:.4}s\n",
        "",
        "-".repeat(width.saturating_sub(1)),
    ));
    out
}

/// Render one row per `(node, worker)` lane. Each bin shows the first
/// letter of the label of the task occupying the lane (`' '` when idle,
/// `'*'` when several tasks share a bin), exposing the per-core schedule
/// that the node-level chart averages away.
///
/// # Panics
/// Panics if `width == 0`.
#[must_use]
pub fn render_worker_gantt(trace: &[TaskSpan], config: &MachineConfig, width: usize) -> String {
    assert!(width > 0, "chart width must be positive");
    let makespan = trace.iter().fold(0.0f64, |m, s| m.max(s.end));
    let mut out = String::new();
    if makespan <= 0.0 {
        out.push_str("(empty trace)\n");
        return out;
    }
    let bin_w = makespan / width as f64;
    for node in 0..config.nodes {
        for worker in 0..config.workers_of(node) {
            let mut row = vec![' '; width];
            for span in trace
                .iter()
                .filter(|s| s.node == node && s.worker == worker)
            {
                let Some((first, last)) = bin_range(span.start, span.end, bin_w, width) else {
                    continue;
                };
                let glyph = span.label.chars().next().unwrap_or('?');
                for cell in &mut row[first..=last] {
                    *cell = if *cell == ' ' { glyph } else { '*' };
                }
            }
            out.push_str(&format!("n{node:>3}.w{worker:<2} |"));
            out.extend(row);
            out.push_str("|\n");
        }
    }
    out.push_str(&format!(
        "{:>9}0{}{makespan:.4}s\n",
        "",
        "-".repeat(width.saturating_sub(1)),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};
    use crate::sim::simulate_traced;

    fn chain_graph(node: u32, n: usize) -> crate::TaskGraph {
        let mut b = GraphBuilder::new();
        let d = b.add_data(node, 8);
        for _ in 0..n {
            b.submit(TaskSpec {
                node,
                duration: 1.0,
                flops: 0.0,
                priority: 0,
                label: "c",
                accesses: vec![Access::read_write(d)],
            });
        }
        b.build()
    }

    #[test]
    fn fully_busy_single_worker_renders_solid() {
        let g = chain_graph(0, 4);
        let m = MachineConfig::test_machine(1, 1);
        let (_, trace) = simulate_traced(&g, &m);
        let chart = render_gantt(&trace, &m, 8);
        let row = chart.lines().next().unwrap();
        assert!(row.starts_with("node   0 |"));
        assert_eq!(row.matches('#').count(), 8, "{chart}");
    }

    #[test]
    fn idle_node_renders_blank() {
        let g = chain_graph(0, 2);
        let m = MachineConfig::test_machine(2, 1);
        let (_, trace) = simulate_traced(&g, &m);
        let chart = render_gantt(&trace, &m, 10);
        let node1 = chart.lines().nth(1).unwrap();
        assert!(node1.contains("|          |"), "{chart}");
    }

    #[test]
    fn half_busy_multiworker_uses_mid_ramp() {
        // 2 workers, but a serial chain: only one is ever busy.
        let g = chain_graph(0, 4);
        let m = MachineConfig::test_machine(1, 2);
        let (_, trace) = simulate_traced(&g, &m);
        let chart = render_gantt(&trace, &m, 4);
        let row = chart.lines().next().unwrap();
        assert_eq!(row.matches(':').count(), 4, "{chart}");
    }

    #[test]
    fn empty_trace_is_handled() {
        let m = MachineConfig::test_machine(1, 1);
        assert!(render_gantt(&[], &m, 10).contains("empty"));
        assert!(render_worker_gantt(&[], &m, 10).contains("empty"));
    }

    #[test]
    fn worker_lanes_show_labels_per_slot() {
        // Serial chain on a 2-worker node: only worker 0 is ever used.
        let g = chain_graph(0, 4);
        let m = MachineConfig::test_machine(1, 2);
        let (_, trace) = simulate_traced(&g, &m);
        let chart = render_worker_gantt(&trace, &m, 8);
        let mut lines = chart.lines();
        let w0 = lines.next().unwrap();
        let w1 = lines.next().unwrap();
        assert!(w0.starts_with("n  0.w0 "), "{chart}");
        assert_eq!(w0.matches('c').count(), 8, "{chart}");
        assert!(w1.contains("|        |"), "{chart}");
    }

    fn span(worker: u32, label: &'static str, start: f64, end: f64) -> TaskSpan {
        TaskSpan {
            task: 0,
            node: 0,
            worker,
            label,
            start,
            end,
        }
    }

    #[test]
    fn span_ending_on_bin_edge_stays_in_its_bin() {
        // makespan 4.0, width 4 => bin edges at 1, 2, 3. A span [0, 1)
        // ends exactly on the first edge: it must fill bin 0 only, in
        // both the node-level and the lane-level chart.
        let m = MachineConfig::test_machine(1, 1);
        let trace = vec![span(0, "a", 0.0, 1.0), span(0, "b", 3.0, 4.0)];
        let chart = render_gantt(&trace, &m, 4);
        let row = chart.lines().next().unwrap();
        assert_eq!(row, "node   0 |#  #|", "{chart}");
        let lanes = render_worker_gantt(&trace, &m, 4);
        let lane = lanes.lines().next().unwrap();
        assert_eq!(lane, "n  0.w0  |a  b|", "{lanes}");
    }

    #[test]
    fn zero_width_span_occupies_no_bin_in_either_renderer() {
        // A degenerate span at a bin edge used to paint a full bin in the
        // lane chart while the node chart dropped it; both now drop it.
        let m = MachineConfig::test_machine(1, 1);
        let trace = vec![span(0, "z", 1.0, 1.0), span(0, "a", 3.0, 4.0)];
        let chart = render_gantt(&trace, &m, 4);
        assert_eq!(chart.lines().next().unwrap(), "node   0 |   #|", "{chart}");
        let lanes = render_worker_gantt(&trace, &m, 4);
        assert_eq!(lanes.lines().next().unwrap(), "n  0.w0  |   a|", "{lanes}");
    }

    #[test]
    fn interior_edge_aligned_spans_tile_exactly() {
        // Back-to-back unit spans on unit bin edges: each fills exactly
        // its own bin — no bleed into the neighbor on either side.
        let m = MachineConfig::test_machine(1, 1);
        let trace = vec![
            span(0, "a", 0.0, 1.0),
            span(0, "b", 1.0, 2.0),
            span(0, "c", 2.0, 3.0),
            span(0, "d", 3.0, 4.0),
        ];
        let lanes = render_worker_gantt(&trace, &m, 4);
        assert_eq!(lanes.lines().next().unwrap(), "n  0.w0  |abcd|", "{lanes}");
        let chart = render_gantt(&trace, &m, 4);
        assert_eq!(chart.lines().next().unwrap(), "node   0 |####|", "{chart}");
    }

    #[test]
    fn axis_shows_makespan() {
        let g = chain_graph(0, 3);
        let m = MachineConfig::test_machine(1, 1);
        let (report, trace) = simulate_traced(&g, &m);
        let chart = render_gantt(&trace, &m, 12);
        assert!(chart.contains(&format!("{:.4}s", report.makespan)));
    }
}
