//! Simulated machine description.

/// Ready-queue ordering policy applied per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Highest task priority first, submission order breaking ties —
    /// Chameleon-style panel-first scheduling. The default.
    #[default]
    Priority,
    /// Strict submission order, ignoring priorities (a naive runtime).
    Fifo,
    /// Most recently ready first (depth-first-ish; exposes how much the
    /// priority scheme matters).
    Lifo,
}

/// Where a remote tile fetch is sourced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceSelection {
    /// Always from the tile version's producer (the last writer's node) —
    /// the plain MPI point-to-point behaviour of the paper's Chameleon
    /// (§II-C: no collective communication schemes).
    #[default]
    Holder,
    /// From whichever node already holds a valid replica and has the
    /// earliest-free send port. This approximates tree/pipelined broadcast
    /// by relaying through earlier receivers — the ablation for the
    /// paper's "each tile is sent to its destination as a separate
    /// message" design point.
    AnyReplica,
}

/// Parameters of the simulated cluster.
///
/// The defaults are calibrated to the paper's testbed (§IV-D): nodes with 36
/// Intel Skylake cores of which ~34 run kernels (one core drives the StarPU
/// scheduler and one the MPI thread), connected by a 100 Gb/s OmniPath
/// fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes `P`.
    pub nodes: u32,
    /// Worker cores per node executing kernels (all nodes, unless
    /// [`MachineConfig::per_node_workers`] overrides it).
    pub workers_per_node: u32,
    /// Optional per-node worker counts for *heterogeneous* clusters
    /// (paper §VI names heterogeneity as the next step; see
    /// `flexdist-hetero`). When set, its length must equal `nodes` and it
    /// takes precedence over `workers_per_node`.
    pub per_node_workers: Option<Vec<u32>>,
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Link bandwidth in bytes/second (per node port, full duplex: the send
    /// and receive directions are independent).
    pub bandwidth: f64,
    /// Whether received tiles are cached per node until the next write
    /// (StarPU behaviour). Disabling re-fetches for every consumer task —
    /// the `ablation_replica_cache` experiment.
    pub replica_cache: bool,
    /// Ready-queue policy.
    pub scheduler: SchedulerPolicy,
    /// Remote-fetch sourcing policy.
    pub source_selection: SourceSelection,
}

impl MachineConfig {
    /// The PlaFRIM-like testbed of the paper with `nodes` nodes.
    #[must_use]
    pub fn paper_testbed(nodes: u32) -> Self {
        Self {
            nodes,
            workers_per_node: 34,
            per_node_workers: None,
            latency: 5e-6,
            // 100 Gb/s ~ 12.5 GB/s per direction.
            bandwidth: 12.5e9,
            replica_cache: true,
            scheduler: SchedulerPolicy::Priority,
            source_selection: SourceSelection::Holder,
        }
    }

    /// A small machine for unit tests: deterministic, low worker counts.
    #[must_use]
    pub fn test_machine(nodes: u32, workers_per_node: u32) -> Self {
        Self {
            nodes,
            workers_per_node,
            per_node_workers: None,
            latency: 1e-5,
            bandwidth: 1e9,
            replica_cache: true,
            scheduler: SchedulerPolicy::Priority,
            source_selection: SourceSelection::Holder,
        }
    }

    /// Worker count of `node`.
    ///
    /// # Panics
    /// Panics if a per-node override is set with the wrong length.
    #[must_use]
    pub fn workers_of(&self, node: u32) -> u32 {
        match &self.per_node_workers {
            Some(v) => {
                assert_eq!(
                    v.len(),
                    self.nodes as usize,
                    "per_node_workers length must equal nodes"
                );
                v[node as usize]
            }
            None => self.workers_per_node,
        }
    }

    /// Total worker count across the machine.
    #[must_use]
    pub fn total_workers(&self) -> u32 {
        match &self.per_node_workers {
            Some(v) => v.iter().sum(),
            None => self.nodes * self.workers_per_node,
        }
    }

    /// Time to push one message of `bytes` through a port.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let m = MachineConfig::paper_testbed(23);
        assert_eq!(m.nodes, 23);
        assert_eq!(m.workers_per_node, 34);
        assert!(m.replica_cache);
    }

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let mut m = MachineConfig::test_machine(1, 1);
        m.latency = 1.0;
        m.bandwidth = 100.0;
        assert!((m.transfer_time(200) - 3.0).abs() < 1e-12);
        // A 500x500 f64 tile over the paper fabric: ~160 us + latency.
        let p = MachineConfig::paper_testbed(4);
        let t = p.transfer_time(500 * 500 * 8);
        assert!(t > 1e-4 && t < 3e-4, "{t}");
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;

    #[test]
    fn per_node_workers_override() {
        let mut m = MachineConfig::test_machine(3, 4);
        assert_eq!(m.workers_of(1), 4);
        assert_eq!(m.total_workers(), 12);
        m.per_node_workers = Some(vec![2, 8, 4]);
        assert_eq!(m.workers_of(0), 2);
        assert_eq!(m.workers_of(1), 8);
        assert_eq!(m.total_workers(), 14);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn per_node_workers_wrong_length_panics() {
        let mut m = MachineConfig::test_machine(3, 4);
        m.per_node_workers = Some(vec![1, 2]);
        let _ = m.workers_of(0);
    }

    #[test]
    fn scheduler_default_is_priority() {
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Priority);
    }
}
