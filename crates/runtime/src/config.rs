//! Simulated machine description.

/// Ready-queue ordering policy applied per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Highest task priority first, submission order breaking ties —
    /// Chameleon-style panel-first scheduling. The default.
    #[default]
    Priority,
    /// Strict submission order, ignoring priorities (a naive runtime).
    Fifo,
    /// Most recently ready first (depth-first-ish; exposes how much the
    /// priority scheme matters).
    Lifo,
}

/// Where a remote tile fetch is sourced from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceSelection {
    /// Always from the tile version's producer (the last writer's node) —
    /// the plain MPI point-to-point behaviour of the paper's Chameleon
    /// (§II-C: no collective communication schemes).
    #[default]
    Holder,
    /// From whichever node already holds a valid replica and has the
    /// earliest-free send port. This approximates tree/pipelined broadcast
    /// by relaying through earlier receivers — the ablation for the
    /// paper's "each tile is sent to its destination as a separate
    /// message" design point.
    AnyReplica,
}

/// How concurrent transfers share the simulated fabric.
///
/// All three models move the same messages — per-link message counts and
/// byte volumes are *model-invariant* (they are decided by the task graph
/// and the replica cache, not by timing) — but they disagree on *when*
/// each transfer completes:
///
/// * [`NetworkModel::Constant`]: every transfer costs
///   `latency + bytes/bandwidth`, serialized on the sender's out port and
///   the receiver's in port (the paper's contention-free cost model,
///   bitwise-compatible with the original simulator);
/// * [`NetworkModel::SharedBandwidth`]: concurrent flows crossing one NIC
///   split its capacity max-min fairly, and every completion time is
///   recomputed on each flow arrival/departure;
/// * [`NetworkModel::Hierarchical`]: nodes hang off switches; cross-switch
///   flows additionally cross a shared uplink, NICs bound how many flows
///   they serialize at once, and a switch without an uplink makes remote
///   pairs unreachable (a typed `NoRoute`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum NetworkModel {
    /// Per-link constant latency/bandwidth cost, ports serialize. Default.
    #[default]
    Constant,
    /// Max-min fair sharing of each NIC among its concurrent flows.
    SharedBandwidth,
    /// Nodes × switches with per-NIC serialization limits and an uplink
    /// bottleneck.
    Hierarchical(HierarchicalTopology),
}

impl NetworkModel {
    /// Stable model name (used in sweeps, reports and the CLI).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Constant => "constant",
            Self::SharedBandwidth => "shared-bandwidth",
            Self::Hierarchical(_) => "hierarchical",
        }
    }
}

/// Two-level topology for [`NetworkModel::Hierarchical`]: every node's NIC
/// connects to one switch; switches reach each other through their uplink.
///
/// Capacities are expressed in units of one NIC's full-duplex bandwidth
/// (`MachineConfig::bandwidth`), so `uplink_capacity = 4.0` means one
/// switch uplink carries four concurrent node-rate flows before it
/// becomes the bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchicalTopology {
    /// Number of switches `S` (must be ≥ 1).
    pub switches: u32,
    /// Optional explicit node → switch map (length = nodes). Defaults to
    /// round-robin: node `n` hangs off switch `n % S`.
    pub switch_map: Option<Vec<u32>>,
    /// Maximum concurrent flows each NIC direction serves (0 = unlimited).
    /// Excess flows queue FIFO at the NIC, with bypass: a blocked head
    /// does not block flows whose NICs have room.
    pub nic_limit: u32,
    /// Capacity of each switch uplink (each direction), in node-NIC
    /// bandwidth units.
    pub uplink_capacity: f64,
    /// Optional per-switch uplink presence (length = switches; default all
    /// `true`). A cross-switch flow touching a switch without an uplink
    /// has no route.
    pub uplinked: Option<Vec<bool>>,
}

impl HierarchicalTopology {
    /// A fully-uplinked topology with `switches` switches, round-robin
    /// node placement, unlimited NIC concurrency and 4× uplinks.
    #[must_use]
    pub fn new(switches: u32) -> Self {
        assert!(switches >= 1, "hierarchical topology needs a switch");
        Self {
            switches,
            switch_map: None,
            nic_limit: 0,
            uplink_capacity: 4.0,
            uplinked: None,
        }
    }

    /// Switch of `node`.
    ///
    /// # Panics
    /// Panics if an explicit map is set but too short, or maps the node to
    /// a switch out of range.
    #[must_use]
    pub fn switch_of(&self, node: u32) -> u32 {
        let s = match &self.switch_map {
            Some(map) => map[node as usize],
            None => node % self.switches,
        };
        assert!(
            s < self.switches,
            "node {node} mapped to switch {s} of {}",
            self.switches
        );
        s
    }

    /// Whether switch `s` has an uplink.
    #[must_use]
    pub fn is_uplinked(&self, s: u32) -> bool {
        match &self.uplinked {
            Some(v) => v[s as usize],
            None => true,
        }
    }
}

/// Parameters of the simulated cluster.
///
/// The defaults are calibrated to the paper's testbed (§IV-D): nodes with 36
/// Intel Skylake cores of which ~34 run kernels (one core drives the StarPU
/// scheduler and one the MPI thread), connected by a 100 Gb/s OmniPath
/// fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of nodes `P`.
    pub nodes: u32,
    /// Worker cores per node executing kernels (all nodes, unless
    /// [`MachineConfig::per_node_workers`] overrides it).
    pub workers_per_node: u32,
    /// Optional per-node worker counts for *heterogeneous* clusters
    /// (paper §VI names heterogeneity as the next step; see
    /// `flexdist-hetero`). When set, its length must equal `nodes` and it
    /// takes precedence over `workers_per_node`.
    pub per_node_workers: Option<Vec<u32>>,
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Link bandwidth in bytes/second (per node port, full duplex: the send
    /// and receive directions are independent).
    pub bandwidth: f64,
    /// Whether received tiles are cached per node until the next write
    /// (StarPU behaviour). Disabling re-fetches for every consumer task —
    /// the `ablation_replica_cache` experiment.
    pub replica_cache: bool,
    /// Ready-queue policy.
    pub scheduler: SchedulerPolicy,
    /// Remote-fetch sourcing policy.
    pub source_selection: SourceSelection,
    /// Contention model applied to concurrent transfers.
    pub network: NetworkModel,
}

impl MachineConfig {
    /// The PlaFRIM-like testbed of the paper with `nodes` nodes.
    #[must_use]
    pub fn paper_testbed(nodes: u32) -> Self {
        Self {
            nodes,
            workers_per_node: 34,
            per_node_workers: None,
            latency: 5e-6,
            // 100 Gb/s ~ 12.5 GB/s per direction.
            bandwidth: 12.5e9,
            replica_cache: true,
            scheduler: SchedulerPolicy::Priority,
            source_selection: SourceSelection::Holder,
            network: NetworkModel::Constant,
        }
    }

    /// A small machine for unit tests: deterministic, low worker counts.
    #[must_use]
    pub fn test_machine(nodes: u32, workers_per_node: u32) -> Self {
        Self {
            nodes,
            workers_per_node,
            per_node_workers: None,
            latency: 1e-5,
            bandwidth: 1e9,
            replica_cache: true,
            scheduler: SchedulerPolicy::Priority,
            source_selection: SourceSelection::Holder,
            network: NetworkModel::Constant,
        }
    }

    /// Worker count of `node`.
    ///
    /// # Panics
    /// Panics if a per-node override is set with the wrong length.
    #[must_use]
    pub fn workers_of(&self, node: u32) -> u32 {
        match &self.per_node_workers {
            Some(v) => {
                assert_eq!(
                    v.len(),
                    self.nodes as usize,
                    "per_node_workers length must equal nodes"
                );
                v[node as usize]
            }
            None => self.workers_per_node,
        }
    }

    /// Total worker count across the machine.
    #[must_use]
    pub fn total_workers(&self) -> u32 {
        match &self.per_node_workers {
            Some(v) => v.iter().sum(),
            None => self.nodes * self.workers_per_node,
        }
    }

    /// Time to push one message of `bytes` through a port.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let m = MachineConfig::paper_testbed(23);
        assert_eq!(m.nodes, 23);
        assert_eq!(m.workers_per_node, 34);
        assert!(m.replica_cache);
    }

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let mut m = MachineConfig::test_machine(1, 1);
        m.latency = 1.0;
        m.bandwidth = 100.0;
        assert!((m.transfer_time(200) - 3.0).abs() < 1e-12);
        // A 500x500 f64 tile over the paper fabric: ~160 us + latency.
        let p = MachineConfig::paper_testbed(4);
        let t = p.transfer_time(500 * 500 * 8);
        assert!(t > 1e-4 && t < 3e-4, "{t}");
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;

    #[test]
    fn per_node_workers_override() {
        let mut m = MachineConfig::test_machine(3, 4);
        assert_eq!(m.workers_of(1), 4);
        assert_eq!(m.total_workers(), 12);
        m.per_node_workers = Some(vec![2, 8, 4]);
        assert_eq!(m.workers_of(0), 2);
        assert_eq!(m.workers_of(1), 8);
        assert_eq!(m.total_workers(), 14);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn per_node_workers_wrong_length_panics() {
        let mut m = MachineConfig::test_machine(3, 4);
        m.per_node_workers = Some(vec![1, 2]);
        let _ = m.workers_of(0);
    }

    #[test]
    fn scheduler_default_is_priority() {
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Priority);
    }
}

#[cfg(test)]
mod network_model_tests {
    use super::*;

    #[test]
    fn default_model_is_constant() {
        assert_eq!(NetworkModel::default(), NetworkModel::Constant);
        assert_eq!(
            MachineConfig::paper_testbed(4).network,
            NetworkModel::Constant
        );
        assert_eq!(
            MachineConfig::test_machine(4, 1).network,
            NetworkModel::Constant
        );
    }

    #[test]
    fn model_names_are_stable() {
        assert_eq!(NetworkModel::Constant.name(), "constant");
        assert_eq!(NetworkModel::SharedBandwidth.name(), "shared-bandwidth");
        assert_eq!(
            NetworkModel::Hierarchical(HierarchicalTopology::new(2)).name(),
            "hierarchical"
        );
    }

    #[test]
    fn round_robin_switch_placement() {
        let h = HierarchicalTopology::new(3);
        assert_eq!(h.switch_of(0), 0);
        assert_eq!(h.switch_of(4), 1);
        assert!(h.is_uplinked(2));
    }

    #[test]
    fn explicit_switch_map_and_uplinks() {
        let mut h = HierarchicalTopology::new(2);
        h.switch_map = Some(vec![0, 0, 1, 1]);
        h.uplinked = Some(vec![true, false]);
        assert_eq!(h.switch_of(1), 0);
        assert_eq!(h.switch_of(3), 1);
        assert!(h.is_uplinked(0));
        assert!(!h.is_uplinked(1));
    }

    #[test]
    #[should_panic(expected = "switch")]
    fn switch_map_out_of_range_panics() {
        let mut h = HierarchicalTopology::new(2);
        h.switch_map = Some(vec![5]);
        let _ = h.switch_of(0);
    }
}
