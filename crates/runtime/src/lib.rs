//! # flexdist-runtime
//!
//! A sequential-task-flow (STF) runtime with a discrete-event cluster
//! simulator — the stand-in for StarPU in this reproduction (paper §II-C).
//!
//! The programming model mirrors StarPU/Chameleon:
//!
//! 1. register data handles (tiles) with a home node each;
//! 2. submit tasks *in sequential program order*, declaring per-datum access
//!    modes (`R`, `W`, `RW`); dependencies (RAW, WAR, WAW hazards) are
//!    inferred automatically;
//! 3. tasks run on the node that owns their written tile (*owner computes*);
//!    reads of remote tiles become point-to-point messages, one per tile
//!    version per receiving node (StarPU's replica cache), fully overlapped
//!    with computation.
//!
//! The [`simulate`](sim::simulate) entry point replays the graph on a
//! configurable machine: `P` nodes × `W` worker cores, per-node send/receive
//! ports with latency + bandwidth, per-node ready queues ordered by task
//! priority. The output [`SimReport`](report::SimReport) carries makespan,
//! GFlop/s, message counts and per-node utilization — the quantities the
//! paper plots.

#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod gantt;
pub mod graph;
pub mod netmodel;
pub mod report;
pub mod sim;
pub mod trace;

pub use batch::{GraphSpec, MachineSpec, SweepPoint, SweepResults, SweepSpec};
pub use config::{
    HierarchicalTopology, MachineConfig, NetworkModel, SchedulerPolicy, SourceSelection,
};
pub use gantt::{render_gantt, render_worker_gantt};
pub use graph::{Access, AccessMode, GraphBuilder, TaskGraph, TaskSpec};
pub use netmodel::{max_min_rates, FlowPorts, NetEngine, SimNetError};
pub use report::{LinkTraffic, SimReport};
pub use sim::{simulate, simulate_traced, Simulator, TaskSpan};
pub use trace::{sim_trace_to_json, sim_trace_to_json_string, spans_to_json};

/// Node index within the simulated cluster.
pub type NodeId = u32;
/// Handle of a registered datum (a tile).
pub type DataId = u32;
/// Handle of a submitted task.
pub type TaskId = u32;
