//! Batch sweep engine: run a grid of (task graph × machine config)
//! simulations with graph construction and simulator allocation amortized.
//!
//! The figure harnesses and the `flexdist sweep` CLI all evaluate grids —
//! schemes × machine sizes × tile counts. Naively each grid point rebuilds
//! its task graph and a fresh simulator; a [`SweepSpec`] instead registers
//! every distinct graph exactly once, pairs it with the machine configs it
//! should run on, and [`SweepSpec::run`] executes the grid in parallel
//! (one worker per graph chunk, courtesy of the rayon shim) with a single
//! reusable [`Simulator`] arena per graph. Results come back in
//! deterministic grid order regardless of thread count, ready for TSV or
//! JSON emission.

use crate::config::MachineConfig;
use crate::graph::TaskGraph;
use crate::report::SimReport;
use crate::sim::Simulator;
use flexdist_json::Value;
use rayon::prelude::*;
use std::time::Instant;

/// A labeled task graph registered with a sweep.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Display label, e.g. `"lu_g2dbc_p23_t40"`.
    pub label: String,
    /// The graph (built exactly once, simulated many times).
    pub graph: TaskGraph,
}

/// A labeled machine configuration registered with a sweep.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Display label, e.g. `"testbed_p23"`.
    pub label: String,
    /// The cluster description.
    pub config: MachineConfig,
}

/// A grid of simulations over registered graphs and machines.
///
/// Grid points are explicit `(graph, machine)` index pairs, so a sweep can
/// be a full cross-product ([`SweepSpec::cross`]) or any sparse subset
/// (e.g. each pattern only on the machine sized for it).
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    graphs: Vec<GraphSpec>,
    machines: Vec<MachineSpec>,
    points: Vec<(usize, usize)>,
}

/// One completed grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label of the graph simulated.
    pub graph: String,
    /// Label of the machine it ran on.
    pub machine: String,
    /// Name of the machine's network model (`"constant"`,
    /// `"shared-bandwidth"`, `"hierarchical"`).
    pub network: &'static str,
    /// The simulation report.
    pub report: SimReport,
}

/// All grid points of a completed sweep, in registration order.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// One entry per grid point, in the order the points were added.
    pub points: Vec<SweepPoint>,
    /// Wall-clock seconds the grid took (simulation only, graphs
    /// excluded — they were built before the sweep started).
    pub wall_seconds: f64,
}

impl SweepSpec {
    /// An empty sweep.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a graph; returns its index for [`SweepSpec::pair`].
    pub fn add_graph(&mut self, label: impl Into<String>, graph: TaskGraph) -> usize {
        self.graphs.push(GraphSpec {
            label: label.into(),
            graph,
        });
        self.graphs.len() - 1
    }

    /// Register a machine config; returns its index for [`SweepSpec::pair`].
    pub fn add_machine(&mut self, label: impl Into<String>, config: MachineConfig) -> usize {
        self.machines.push(MachineSpec {
            label: label.into(),
            config,
        });
        self.machines.len() - 1
    }

    /// Add one grid point.
    ///
    /// # Panics
    /// Panics if either index was not returned by the `add_*` methods.
    pub fn pair(&mut self, graph: usize, machine: usize) {
        assert!(graph < self.graphs.len(), "graph index out of range");
        assert!(machine < self.machines.len(), "machine index out of range");
        self.points.push((graph, machine));
    }

    /// Add the full cross-product of every registered graph with every
    /// registered machine (graph-major order).
    pub fn cross(&mut self) {
        for g in 0..self.graphs.len() {
            for m in 0..self.machines.len() {
                self.points.push((g, m));
            }
        }
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no grid points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Registered graphs.
    #[must_use]
    pub fn graphs(&self) -> &[GraphSpec] {
        &self.graphs
    }

    /// Registered machines.
    #[must_use]
    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    /// Execute every grid point and return the reports in point order.
    ///
    /// Points are grouped by graph; each graph gets one reusable
    /// [`Simulator`] that runs all of its machine configs back to back,
    /// and distinct graphs run on distinct shim-rayon workers. Output
    /// order (and content — the simulator is deterministic) is identical
    /// at any thread count.
    ///
    /// # Panics
    /// Panics if a grid point's graph references a node outside its
    /// machine (same conditions as [`crate::simulate`]).
    #[must_use]
    pub fn run(&self) -> SweepResults {
        let start = Instant::now();
        // Group point indices by graph so each graph's Simulator is built
        // once and reused across all its machine configs.
        let mut by_graph: Vec<Vec<usize>> = vec![Vec::new(); self.graphs.len()];
        for (pi, &(g, _)) in self.points.iter().enumerate() {
            by_graph[g].push(pi);
        }
        let per_graph: Vec<Vec<(usize, SimReport)>> = by_graph
            .par_iter()
            .map(|point_indices| {
                let mut out = Vec::with_capacity(point_indices.len());
                if point_indices.is_empty() {
                    return out;
                }
                let g = self.points[point_indices[0]].0;
                let mut sim = Simulator::new(&self.graphs[g].graph);
                for &pi in point_indices {
                    let (_, m) = self.points[pi];
                    out.push((pi, sim.run(&self.machines[m].config)));
                }
                out
            })
            .collect();
        let mut reports: Vec<Option<SimReport>> = vec![None; self.points.len()];
        for (pi, report) in per_graph.into_iter().flatten() {
            reports[pi] = Some(report);
        }
        let points = self
            .points
            .iter()
            .zip(reports)
            .map(|(&(g, m), report)| SweepPoint {
                graph: self.graphs[g].label.clone(),
                machine: self.machines[m].label.clone(),
                network: self.machines[m].config.network.name(),
                report: report.expect("every grid point ran"),
            })
            .collect();
        SweepResults {
            points,
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

impl SweepResults {
    /// Column headers of [`SweepResults::to_tsv`].
    pub const TSV_COLUMNS: [&'static str; 9] = [
        "graph",
        "machine",
        "makespan_s",
        "gflops",
        "messages",
        "bytes_sent",
        "peak_mem_bytes",
        "utilization",
        "tasks",
    ];

    /// Tab-separated table of the grid, one row per point, with a header
    /// row (the format the figure harnesses print).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = Self::TSV_COLUMNS.join("\t");
        out.push('\n');
        for p in &self.points {
            let r = &p.report;
            out.push_str(&format!(
                "{}\t{}\t{:.6}\t{:.3}\t{}\t{}\t{}\t{:.4}\t{}\n",
                p.graph,
                p.machine,
                r.makespan,
                r.gflops(),
                r.messages,
                r.bytes_sent,
                r.max_peak_memory(),
                r.utilization(),
                r.tasks,
            ));
        }
        out
    }

    /// JSON document of the grid (kind `"sweep"`), with full per-node
    /// vectors per point.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|p| {
                let r = &p.report;
                flexdist_json::object(vec![
                    ("graph", Value::from(p.graph.as_str())),
                    ("machine", Value::from(p.machine.as_str())),
                    ("network", Value::from(p.network)),
                    ("makespan", Value::from(r.makespan)),
                    ("total_flops", Value::from(r.total_flops)),
                    ("gflops", Value::from(r.gflops())),
                    ("messages", Value::from(r.messages)),
                    ("bytes_sent", Value::from(r.bytes_sent)),
                    ("tasks", Value::from(r.tasks)),
                    ("total_workers", Value::from(r.total_workers)),
                    ("utilization", Value::from(r.utilization())),
                    (
                        "busy_per_node",
                        Value::Array(r.busy_per_node.iter().map(|&x| Value::from(x)).collect()),
                    ),
                    (
                        "peak_memory_per_node",
                        Value::Array(
                            r.peak_memory_per_node
                                .iter()
                                .map(|&x| Value::from(x))
                                .collect(),
                        ),
                    ),
                    (
                        "peak_ready_per_node",
                        Value::Array(
                            r.peak_ready_per_node
                                .iter()
                                .map(|&x| Value::from(x))
                                .collect(),
                        ),
                    ),
                    (
                        "idle_per_node",
                        Value::Array(r.idle_per_node.iter().map(|&x| Value::from(x)).collect()),
                    ),
                ])
            })
            .collect();
        flexdist_json::object(vec![
            ("kind", Value::from("sweep")),
            ("wall_seconds", Value::from(self.wall_seconds)),
            ("points", Value::Array(points)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Access, GraphBuilder, TaskSpec};
    use crate::sim::simulate;

    fn chain_graph(nodes: u32, tasks: usize) -> TaskGraph {
        let mut b = GraphBuilder::new();
        let data: Vec<_> = (0..nodes).map(|n| b.add_data(n, 1000)).collect();
        for i in 0..tasks {
            let n = (i as u32) % nodes;
            b.submit(TaskSpec {
                node: n,
                duration: 0.01 + (i % 5) as f64 * 0.002,
                flops: 1e8,
                priority: (tasks - i) as i64,
                label: "k",
                accesses: vec![
                    Access::read(data[((i + 1) as u32 % nodes) as usize]),
                    Access::read_write(data[n as usize]),
                ],
            });
        }
        b.build()
    }

    fn spec_3x2() -> SweepSpec {
        let mut spec = SweepSpec::new();
        for (i, tasks) in [30usize, 50, 80].into_iter().enumerate() {
            spec.add_graph(format!("g{i}"), chain_graph(3, tasks));
        }
        spec.add_machine("m2w", MachineConfig::test_machine(3, 2));
        spec.add_machine("m4w", MachineConfig::test_machine(3, 4));
        spec.cross();
        spec
    }

    #[test]
    fn sweep_matches_individual_simulations_in_order() {
        let spec = spec_3x2();
        assert_eq!(spec.len(), 6);
        let results = spec.run();
        assert_eq!(results.points.len(), 6);
        let mut i = 0;
        for g in spec.graphs() {
            for m in spec.machines() {
                let p = &results.points[i];
                assert_eq!(p.graph, g.label);
                assert_eq!(p.machine, m.label);
                assert_eq!(p.report, simulate(&g.graph, &m.config), "point {i}");
                i += 1;
            }
        }
        assert!(results.wall_seconds >= 0.0);
    }

    #[test]
    fn sweep_is_identical_across_thread_counts() {
        let spec = spec_3x2();
        let runs: Vec<SweepResults> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| rayon::with_thread_count(threads, || spec.run()))
            .collect();
        for r in &runs[1..] {
            assert_eq!(r.points.len(), runs[0].points.len());
            for (a, b) in runs[0].points.iter().zip(&r.points) {
                assert_eq!(a.graph, b.graph);
                assert_eq!(a.machine, b.machine);
                assert_eq!(a.report, b.report);
            }
        }
    }

    #[test]
    fn sparse_pairing_runs_only_selected_points() {
        let mut spec = SweepSpec::new();
        let g0 = spec.add_graph("g0", chain_graph(2, 20));
        let g1 = spec.add_graph("g1", chain_graph(4, 20));
        let small = spec.add_machine("p2", MachineConfig::test_machine(2, 1));
        let big = spec.add_machine("p4", MachineConfig::test_machine(4, 1));
        // g1 uses 4 nodes and would panic on the 2-node machine; sparse
        // pairing keeps it off that config.
        spec.pair(g0, small);
        spec.pair(g0, big);
        spec.pair(g1, big);
        let results = spec.run();
        assert_eq!(results.points.len(), 3);
        assert_eq!(results.points[2].graph, "g1");
        assert_eq!(results.points[2].machine, "p4");
    }

    #[test]
    fn tsv_and_json_cover_every_point() {
        let spec = spec_3x2();
        let results = spec.run();
        let tsv = results.to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 1 + 6);
        assert!(lines[0].starts_with("graph\tmachine\tmakespan_s"));
        assert!(lines[1].starts_with("g0\tm2w\t"));

        let json = results.to_json();
        assert_eq!(json.get("kind").and_then(Value::as_str), Some("sweep"));
        let points = json.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points.len(), 6);
        assert_eq!(
            points[0].get("network").and_then(Value::as_str),
            Some("constant")
        );
        assert_eq!(results.points[0].network, "constant");
        let reparsed = flexdist_json::parse(&json.to_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let results = SweepSpec::new().run();
        assert!(results.points.is_empty());
        assert_eq!(results.to_tsv().lines().count(), 1);
    }
}
