//! Simulation output.

use crate::NodeId;

/// Traffic of one ordered node pair in a simulated run, as reported by
/// [`crate::Simulator::link_traffic`].
///
/// Counts are scheduled-transfer counts: decided by the task graph, the
/// replica cache and the sourcing policy, identical under every
/// [`crate::NetworkModel`]. This is the quantity `flexdist replay` matches
/// against executor `NetReport` goodput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Messages sent `from → to`.
    pub messages: u64,
    /// Payload bytes sent `from → to`.
    pub bytes: u64,
}

/// Result of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end execution time in seconds.
    pub makespan: f64,
    /// Total flops of the task graph.
    pub total_flops: f64,
    /// Number of point-to-point messages sent.
    pub messages: u64,
    /// Bytes moved across the network.
    pub bytes_sent: u64,
    /// Per-node worker-busy seconds (summed over the node's workers).
    pub busy_per_node: Vec<f64>,
    /// Per-node peak resident bytes (home tiles plus cached replicas) —
    /// the memory/communication trade-off metric of the 2.5D line of work
    /// the paper surveys in §II-A.
    pub peak_memory_per_node: Vec<u64>,
    /// Number of tasks executed.
    pub tasks: usize,
    /// Total workers across the machine (utilization accounting).
    pub total_workers: u32,
    /// Per-node peak ready-queue length — how much parallel slack each
    /// node's scheduler ever had.
    pub peak_ready_per_node: Vec<usize>,
    /// Per-node idle worker-seconds (`makespan × workers − busy`).
    pub idle_per_node: Vec<f64>,
}

impl SimReport {
    /// Aggregate throughput in GFlop/s.
    #[must_use]
    pub fn gflops(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.total_flops / self.makespan / 1e9
    }

    /// Throughput per node in GFlop/s (the paper's per-node performance
    /// metric).
    #[must_use]
    pub fn gflops_per_node(&self) -> f64 {
        if self.busy_per_node.is_empty() {
            return 0.0;
        }
        self.gflops() / self.busy_per_node.len() as f64
    }

    /// Largest per-node peak resident memory in bytes.
    #[must_use]
    pub fn max_peak_memory(&self) -> u64 {
        self.peak_memory_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Average worker utilization in `[0, 1]`: busy time over
    /// `makespan × workers` across the whole machine.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.busy_per_node.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.busy_per_node.iter().sum();
        let capacity = self.makespan * f64::from(self.total_workers);
        busy / capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            makespan: 2.0,
            total_flops: 4e9,
            messages: 10,
            bytes_sent: 1000,
            busy_per_node: vec![1.0, 3.0],
            peak_memory_per_node: vec![100, 300],
            tasks: 5,
            total_workers: 4,
            peak_ready_per_node: vec![2, 3],
            idle_per_node: vec![3.0, 1.0],
        }
    }

    #[test]
    fn gflops_accounting() {
        let r = report();
        assert!((r.gflops() - 2.0).abs() < 1e-12);
        assert!((r.gflops_per_node() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_bounded() {
        let r = report();
        // busy 4.0 over capacity 2.0 * 2 nodes * 2 workers = 8.0.
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_makespan_is_safe() {
        let mut r = report();
        r.makespan = 0.0;
        assert_eq!(r.gflops(), 0.0);
        assert_eq!(r.utilization(), 0.0);
    }
}
