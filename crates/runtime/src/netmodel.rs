//! Contended network engines behind the [`NetworkModel`] seam.
//!
//! The simulator's constant model prices every transfer at
//! `latency + bytes/bandwidth` with port serialization and never touches
//! this module. The two contended models instead hand each transfer to a
//! [`NetEngine`] as a *flow*: a fixed amount of work (the constant-model
//! transfer time, i.e. seconds at rate 1.0) draining through a set of
//! *ports* (NICs, switch uplinks) whose capacity is split max-min fairly
//! among the flows crossing them. Every flow arrival or departure
//! recomputes all rates and predicted finish times — counts and byte
//! volumes are unchanged by the model; only completion *times* move.
//!
//! [`NetworkModel`]: crate::config::NetworkModel

use std::collections::VecDeque;
use std::fmt;

use crate::config::{MachineConfig, NetworkModel};

/// Routing failure inside a simulated topology.
///
/// Mirrors the executor-side `NetError::NoRoute` so simulator and fabric
/// report unreachable pairs in the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimNetError {
    /// The topology offers no path between two ranks.
    NoRoute {
        /// Sending rank.
        from: u32,
        /// Receiving rank.
        to: u32,
        /// Which topology variant rejected the pair.
        topology: &'static str,
    },
}

impl fmt::Display for SimNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoRoute { from, to, topology } => write!(
                f,
                "topology ({topology}) has no link from rank {from} to rank {to}"
            ),
        }
    }
}

impl std::error::Error for SimNetError {}

/// The (at most four) ports a flow crosses. Same-switch and flat-model
/// flows cross two NICs; cross-switch flows add the two uplink directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPorts {
    ports: [u32; 4],
    n: u8,
}

impl FlowPorts {
    /// A two-port flow (sender NIC out, receiver NIC in).
    #[must_use]
    pub fn pair(a: u32, b: u32) -> Self {
        Self {
            ports: [a, b, 0, 0],
            n: 2,
        }
    }

    /// A four-port flow (NIC out, NIC in, uplink up, uplink down).
    #[must_use]
    pub fn quad(a: u32, b: u32, c: u32, d: u32) -> Self {
        Self {
            ports: [a, b, c, d],
            n: 4,
        }
    }

    /// The crossed port indices.
    #[must_use]
    pub fn ports(&self) -> &[u32] {
        &self.ports[..self.n as usize]
    }
}

/// Progressive-filling max-min fair rate allocation.
///
/// Every flow's rate rises uniformly until a port it crosses saturates,
/// which freezes the flow at its current rate; filling continues among the
/// survivors until all flows are frozen or no crossed capacity remains.
/// The result is the unique max-min fair allocation: no flow's rate can be
/// raised without lowering that of a flow on a saturated ("bottleneck")
/// port whose rate is no larger.
///
/// `port_cap[p]` is the capacity of port `p`; each `flows[i]` lists the
/// ports flow `i` crosses. Returns one rate per flow.
///
/// # Panics
/// Panics if a flow names a port outside `port_cap`.
#[must_use]
pub fn max_min_rates(flows: &[FlowPorts], port_cap: &[f64]) -> Vec<f64> {
    let mut rem = port_cap.to_vec();
    let mut act = vec![0u32; port_cap.len()];
    let mut frozen = vec![false; flows.len()];
    let mut rates = vec![0.0; flows.len()];
    water_fill(flows, port_cap, &mut rem, &mut act, &mut frozen, &mut rates);
    rates
}

/// In-place core of [`max_min_rates`]; scratch slices must be pre-sized
/// (`rem` seeded with capacities, `act`/`frozen`/`rates` zeroed).
fn water_fill(
    flows: &[FlowPorts],
    port_cap: &[f64],
    rem: &mut [f64],
    act: &mut [u32],
    frozen: &mut [bool],
    rates: &mut [f64],
) {
    for f in flows {
        for &p in f.ports() {
            act[p as usize] += 1;
        }
    }
    loop {
        // The uniform increment every unfrozen flow can still take is
        // bounded by the most loaded remaining port.
        let mut inc = f64::INFINITY;
        for p in 0..port_cap.len() {
            if act[p] > 0 {
                inc = inc.min(rem[p] / f64::from(act[p]));
            }
        }
        if !inc.is_finite() {
            break; // no unfrozen flow crosses any port
        }
        for (i, r) in rates.iter_mut().enumerate() {
            if !frozen[i] {
                *r += inc;
            }
        }
        for p in 0..port_cap.len() {
            if act[p] > 0 {
                rem[p] -= inc * f64::from(act[p]);
            }
        }
        // Freeze every flow crossing a now-saturated port. The most
        // loaded port saturates exactly (same float arithmetic), so each
        // round freezes at least one flow and the loop terminates; the
        // relative threshold only absorbs rounding on ties.
        let mut froze = 0u32;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let sat = f
                .ports()
                .iter()
                .any(|&p| rem[p as usize] <= port_cap[p as usize] * 1e-9);
            if sat {
                frozen[i] = true;
                for &p in f.ports() {
                    act[p as usize] -= 1;
                }
                froze += 1;
            }
        }
        if froze == 0 {
            break;
        }
    }
}

/// One in-flight transfer inside the engine.
#[derive(Debug, Clone, Copy)]
struct Flow {
    /// Opaque caller token (the simulator's transfer event payload).
    token: u64,
    ports: FlowPorts,
    /// Remaining work in seconds-at-rate-1.0.
    work_left: f64,
    rate: f64,
    /// Predicted completion time under the current rates.
    finish: f64,
}

/// A flow blocked at a NIC concurrency limit, waiting for admission.
#[derive(Debug, Clone, Copy)]
struct Pending {
    token: u64,
    ports: FlowPorts,
    work: f64,
}

/// Which contended topology the engine prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// All pairs one hop apart; NICs are the only shared resource.
    Flat,
    /// Two-level: NICs feed switches, switches reach each other through
    /// capacity-limited uplinks.
    Hierarchical,
}

/// Fluid-flow network engine for the contended models.
///
/// Port layout for `P` nodes and `S` switches: out-NIC of node `n` is port
/// `n`, in-NIC is `P + n`, uplink-up of switch `s` is `2P + s`, uplink-down
/// is `2P + S + s`. NIC ports have capacity 1.0 (one full-bandwidth flow);
/// uplinks carry `uplink_capacity` NIC-units each direction.
#[derive(Debug, Clone, Default)]
pub struct NetEngine {
    shape: Option<Shape>,
    nodes: u32,
    switches: u32,
    node_switch: Vec<u32>,
    uplinked: Vec<bool>,
    nic_limit: u32,
    port_cap: Vec<f64>,
    /// Active-flow count per NIC port (admission control + load probes).
    nic_active: Vec<u32>,
    flows: Vec<Flow>,
    wait: VecDeque<Pending>,
    /// Engine clock: the time state was last integrated to.
    last: f64,
    // Scratch for rate recomputation (kept to avoid per-event allocation).
    rem: Vec<f64>,
    act: Vec<u32>,
    frozen: Vec<bool>,
    rates: Vec<f64>,
    ports_scratch: Vec<FlowPorts>,
}

impl NetEngine {
    /// Rebuild the engine for `config`, dropping all flows. For the
    /// constant model the engine stays inert (the simulator never routes
    /// through it).
    pub fn configure(&mut self, config: &MachineConfig) {
        self.flows.clear();
        self.wait.clear();
        self.last = 0.0;
        let p = config.nodes;
        match &config.network {
            NetworkModel::Constant => {
                self.shape = None;
                self.nodes = 0;
                self.switches = 0;
                self.node_switch.clear();
                self.uplinked.clear();
                self.nic_limit = 0;
                self.port_cap.clear();
                self.nic_active.clear();
            }
            NetworkModel::SharedBandwidth => {
                self.shape = Some(Shape::Flat);
                self.nodes = p;
                self.switches = 0;
                self.node_switch.clear();
                self.uplinked.clear();
                self.nic_limit = 0;
                self.port_cap.clear();
                self.port_cap.resize(2 * p as usize, 1.0);
                self.nic_active.clear();
                self.nic_active.resize(2 * p as usize, 0);
            }
            NetworkModel::Hierarchical(h) => {
                self.shape = Some(Shape::Hierarchical);
                self.nodes = p;
                self.switches = h.switches;
                self.node_switch.clear();
                self.node_switch.extend((0..p).map(|n| h.switch_of(n)));
                self.uplinked.clear();
                self.uplinked
                    .extend((0..h.switches).map(|s| h.is_uplinked(s)));
                self.nic_limit = h.nic_limit;
                self.port_cap.clear();
                self.port_cap.resize(2 * p as usize, 1.0);
                self.port_cap
                    .resize(2 * (p + h.switches) as usize, h.uplink_capacity);
                self.nic_active.clear();
                self.nic_active.resize(2 * p as usize, 0);
            }
        }
    }

    /// Whether the engine is pricing transfers (a contended model is
    /// configured).
    #[must_use]
    pub fn is_contended(&self) -> bool {
        self.shape.is_some()
    }

    /// The ports a `src → dst` flow crosses, or a typed error if the
    /// topology offers no path.
    ///
    /// # Errors
    /// [`SimNetError::NoRoute`] when `src` and `dst` sit on different
    /// switches and either switch lacks an uplink.
    pub fn route(&self, src: u32, dst: u32) -> Result<FlowPorts, SimNetError> {
        let p = self.nodes;
        match self.shape {
            None | Some(Shape::Flat) => Ok(FlowPorts::pair(src, p + dst)),
            Some(Shape::Hierarchical) => {
                let s1 = self.node_switch[src as usize];
                let s2 = self.node_switch[dst as usize];
                if s1 == s2 {
                    Ok(FlowPorts::pair(src, p + dst))
                } else if self.uplinked[s1 as usize] && self.uplinked[s2 as usize] {
                    Ok(FlowPorts::quad(
                        src,
                        p + dst,
                        2 * p + s1,
                        2 * p + self.switches + s2,
                    ))
                } else {
                    Err(SimNetError::NoRoute {
                        from: src,
                        to: dst,
                        topology: "hierarchical",
                    })
                }
            }
        }
    }

    /// Add a flow of `work` seconds-at-rate-1.0 arriving *now* (the engine
    /// must already be advanced to the current time). Flows blocked by the
    /// NIC concurrency limit queue FIFO and are admitted as capacity
    /// frees.
    ///
    /// # Errors
    /// Propagates [`SimNetError::NoRoute`] from routing.
    pub fn add_flow(
        &mut self,
        token: u64,
        src: u32,
        dst: u32,
        work: f64,
    ) -> Result<(), SimNetError> {
        let ports = self.route(src, dst)?;
        if self.nic_has_room(ports) {
            self.activate(Flow {
                token,
                ports,
                work_left: work,
                rate: 0.0,
                finish: f64::INFINITY,
            });
            self.recompute();
        } else {
            self.wait.push_back(Pending { token, ports, work });
        }
        Ok(())
    }

    /// Integrate flow progress up to `t`, appending the tokens of every
    /// flow whose predicted finish is `<= t` to `completed` (in arrival
    /// order). Departures admit waiting flows and trigger a fairness
    /// recomputation.
    pub fn advance_to(&mut self, t: f64, completed: &mut Vec<u64>) {
        let dt = t - self.last;
        if dt > 0.0 {
            for f in &mut self.flows {
                if f.rate > 0.0 {
                    f.work_left = (f.work_left - f.rate * dt).max(0.0);
                }
            }
        }
        self.last = t;
        let mut removed = false;
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].finish <= t {
                let f = self.flows.remove(i);
                completed.push(f.token);
                self.nic_active[f.ports.ports[0] as usize] -= 1;
                self.nic_active[f.ports.ports[1] as usize] -= 1;
                removed = true;
            } else {
                i += 1;
            }
        }
        if removed {
            self.admit_waiters();
            self.recompute();
        }
    }

    /// Earliest predicted flow completion, if any flow is active.
    #[must_use]
    pub fn next_finish(&self) -> Option<f64> {
        self.flows
            .iter()
            .map(|f| f.finish)
            .fold(None, |m, f| match m {
                None => Some(f),
                Some(m) => Some(m.min(f)),
            })
    }

    /// Active flows currently crossing node `n`'s out NIC (replica-source
    /// load probe for `SourceSelection::AnyReplica`).
    #[must_use]
    pub fn out_load(&self, n: u32) -> u32 {
        self.nic_active[n as usize]
    }

    /// Active flow count.
    #[must_use]
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Flows parked at the NIC admission queue.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.wait.len()
    }

    /// Engine clock (time of the last integration).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.last
    }

    fn nic_has_room(&self, ports: FlowPorts) -> bool {
        if self.nic_limit == 0 {
            return true;
        }
        self.nic_active[ports.ports[0] as usize] < self.nic_limit
            && self.nic_active[ports.ports[1] as usize] < self.nic_limit
    }

    fn activate(&mut self, flow: Flow) {
        self.nic_active[flow.ports.ports[0] as usize] += 1;
        self.nic_active[flow.ports.ports[1] as usize] += 1;
        self.flows.push(flow);
    }

    /// FIFO admission with bypass: a blocked head does not hold back
    /// queued flows whose NICs have room.
    fn admit_waiters(&mut self) {
        let mut i = 0;
        while i < self.wait.len() {
            let admissible = self.wait.get(i).is_some_and(|p| self.nic_has_room(p.ports));
            if admissible {
                if let Some(p) = self.wait.remove(i) {
                    self.activate(Flow {
                        token: p.token,
                        ports: p.ports,
                        work_left: p.work,
                        rate: 0.0,
                        finish: f64::INFINITY,
                    });
                }
            } else {
                i += 1;
            }
        }
    }

    /// Recompute every active flow's max-min fair rate and predicted
    /// finish time from the current flow set.
    fn recompute(&mut self) {
        let np = self.port_cap.len();
        let nf = self.flows.len();
        self.rem.clear();
        self.rem.extend_from_slice(&self.port_cap);
        self.act.clear();
        self.act.resize(np, 0);
        self.frozen.clear();
        self.frozen.resize(nf, false);
        self.rates.clear();
        self.rates.resize(nf, 0.0);
        self.ports_scratch.clear();
        self.ports_scratch
            .extend(self.flows.iter().map(|f| f.ports));
        water_fill(
            &self.ports_scratch,
            &self.port_cap,
            &mut self.rem,
            &mut self.act,
            &mut self.frozen,
            &mut self.rates,
        );
        for (f, &rate) in self.flows.iter_mut().zip(self.rates.iter()) {
            f.rate = rate;
            f.finish = if f.work_left <= 0.0 {
                self.last
            } else if rate > 0.0 {
                self.last + f.work_left / rate
            } else {
                f64::INFINITY
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchicalTopology;

    fn flat_engine(nodes: u32) -> NetEngine {
        let mut m = MachineConfig::test_machine(nodes, 1);
        m.network = NetworkModel::SharedBandwidth;
        let mut e = NetEngine::default();
        e.configure(&m);
        e
    }

    fn hier_engine(nodes: u32, topo: HierarchicalTopology) -> NetEngine {
        let mut m = MachineConfig::test_machine(nodes, 1);
        m.network = NetworkModel::Hierarchical(topo);
        let mut e = NetEngine::default();
        e.configure(&m);
        e
    }

    #[test]
    fn lone_flow_gets_full_rate() {
        let rates = max_min_rates(&[FlowPorts::pair(0, 1)], &[1.0, 1.0]);
        assert_eq!(rates, vec![1.0]);
    }

    #[test]
    fn two_flows_on_one_port_split_evenly() {
        let flows = [FlowPorts::pair(0, 1), FlowPorts::pair(0, 2)];
        let rates = max_min_rates(&flows, &[1.0, 1.0, 1.0]);
        assert!((rates[0] - 0.5).abs() < 1e-12);
        assert!((rates[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let flows = [FlowPorts::pair(0, 1), FlowPorts::pair(2, 3)];
        let rates = max_min_rates(&flows, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(rates, vec![1.0, 1.0]);
    }

    #[test]
    fn bottlenecked_flow_frees_capacity_for_others() {
        // Flow 0 crosses the narrow port 2 (cap 0.25) and freezes early;
        // flow 1 then takes the rest of shared port 0.
        let flows = [FlowPorts::pair(0, 2), FlowPorts::pair(0, 1)];
        let rates = max_min_rates(&flows, &[1.0, 1.0, 0.25]);
        assert!((rates[0] - 0.25).abs() < 1e-12, "{rates:?}");
        assert!((rates[1] - 0.75).abs() < 1e-12, "{rates:?}");
    }

    #[test]
    fn uplink_is_shared_by_cross_switch_flows() {
        // Four cross-switch flows from distinct senders to distinct
        // receivers share one uplink of capacity 2.0: 0.5 each.
        let flows = [
            FlowPorts::quad(0, 4, 8, 9),
            FlowPorts::quad(1, 5, 8, 9),
            FlowPorts::quad(2, 6, 8, 9),
            FlowPorts::quad(3, 7, 8, 9),
        ];
        let caps = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0];
        let rates = max_min_rates(&flows, &caps);
        for r in rates {
            assert!((r - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_capacity_port_zeroes_its_flows() {
        let flows = [FlowPorts::pair(0, 1), FlowPorts::pair(2, 3)];
        let rates = max_min_rates(&flows, &[0.0, 1.0, 1.0, 1.0]);
        assert_eq!(rates[0], 0.0);
        assert_eq!(rates[1], 1.0);
    }

    #[test]
    fn engine_serializes_two_flows_on_one_sender() {
        let mut e = flat_engine(3);
        e.add_flow(1, 0, 1, 1.0).unwrap();
        e.add_flow(2, 0, 2, 1.0).unwrap();
        // Both run at 0.5: each predicted to finish at t=2.
        assert!((e.next_finish().unwrap() - 2.0).abs() < 1e-12);
        let mut done = Vec::new();
        e.advance_to(2.0, &mut done);
        assert_eq!(done, vec![1, 2]);
        assert_eq!(e.active(), 0);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut e = flat_engine(3);
        e.add_flow(1, 0, 1, 0.5).unwrap();
        e.add_flow(2, 0, 2, 1.0).unwrap();
        // Shared sender: both at 0.5. Flow 1 finishes at t=1.
        let t1 = e.next_finish().unwrap();
        assert!((t1 - 1.0).abs() < 1e-12);
        let mut done = Vec::new();
        e.advance_to(t1, &mut done);
        assert_eq!(done, vec![1]);
        // Flow 2 has 0.5 work left, now at rate 1.0: finishes at t=1.5.
        assert!((e.next_finish().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arrival_slows_down_existing_flow() {
        let mut e = flat_engine(3);
        e.add_flow(1, 0, 1, 1.0).unwrap();
        assert!((e.next_finish().unwrap() - 1.0).abs() < 1e-12);
        let mut done = Vec::new();
        e.advance_to(0.5, &mut done);
        assert!(done.is_empty());
        e.add_flow(2, 0, 2, 1.0).unwrap();
        // Flow 1 has 0.5 work left at rate 0.5 → finishes at t=1.5.
        assert!((e.next_finish().unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn nic_limit_queues_and_admits_fifo() {
        let mut topo = HierarchicalTopology::new(1);
        topo.nic_limit = 1;
        let mut e = hier_engine(3, topo);
        e.add_flow(1, 0, 1, 1.0).unwrap();
        e.add_flow(2, 0, 2, 1.0).unwrap(); // blocked: out NIC 0 full
        assert_eq!(e.active(), 1);
        assert_eq!(e.waiting(), 1);
        let mut done = Vec::new();
        e.advance_to(1.0, &mut done);
        assert_eq!(done, vec![1]);
        assert_eq!(e.active(), 1); // flow 2 admitted on departure
        assert_eq!(e.waiting(), 0);
        e.advance_to(2.0, &mut done);
        assert_eq!(done, vec![1, 2]);
    }

    #[test]
    fn nic_limit_bypass_admits_unblocked_waiter() {
        let mut topo = HierarchicalTopology::new(1);
        topo.nic_limit = 1;
        let mut e = hier_engine(4, topo);
        e.add_flow(1, 0, 1, 2.0).unwrap();
        e.add_flow(2, 0, 2, 1.0).unwrap(); // blocked behind flow 1
        e.add_flow(3, 3, 2, 1.0).unwrap(); // different NICs: admitted
        assert_eq!(e.active(), 2);
        assert_eq!(e.waiting(), 1);
        let mut done = Vec::new();
        e.advance_to(1.0, &mut done);
        assert_eq!(done, vec![3]);
        assert_eq!(e.waiting(), 1); // flow 2 still blocked by flow 1
        e.advance_to(2.0, &mut done);
        assert_eq!(done, vec![3, 1]);
        assert_eq!(e.active(), 1); // flow 2 finally admitted
    }

    #[test]
    fn cross_switch_without_uplink_is_no_route() {
        let mut topo = HierarchicalTopology::new(2);
        topo.switch_map = Some(vec![0, 0, 1, 1]);
        topo.uplinked = Some(vec![true, false]);
        let e = hier_engine(4, topo);
        let err = e.route(0, 2).unwrap_err();
        assert_eq!(
            err,
            SimNetError::NoRoute {
                from: 0,
                to: 2,
                topology: "hierarchical"
            }
        );
        assert_eq!(
            err.to_string(),
            "topology (hierarchical) has no link from rank 0 to rank 2"
        );
        // Same-switch pairs still route.
        assert!(e.route(0, 1).is_ok());
        assert!(e.route(2, 3).is_ok());
    }

    #[test]
    fn zero_work_flow_completes_immediately_on_next_advance() {
        let mut e = flat_engine(2);
        e.add_flow(7, 0, 1, 0.0).unwrap();
        assert_eq!(e.next_finish(), Some(0.0));
        let mut done = Vec::new();
        e.advance_to(0.0, &mut done);
        assert_eq!(done, vec![7]);
    }

    #[test]
    fn configure_resets_state() {
        let mut e = flat_engine(2);
        e.add_flow(1, 0, 1, 1.0).unwrap();
        let mut m = MachineConfig::test_machine(2, 1);
        m.network = NetworkModel::SharedBandwidth;
        e.configure(&m);
        assert_eq!(e.active(), 0);
        assert_eq!(e.next_finish(), None);
        assert_eq!(e.now(), 0.0);
    }
}
