//! Property-based tests of the STF runtime and the discrete-event
//! simulator: scheduling-theory bounds and conservation laws on random
//! task graphs.

use flexdist_runtime::{simulate, Access, GraphBuilder, MachineConfig, TaskSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomTask {
    node: u32,
    duration: f64,
    reads: Vec<u8>,
    write: u8,
}

fn arb_graph(
    max_nodes: u32,
    n_data: u8,
    max_tasks: usize,
) -> impl Strategy<Value = (u32, Vec<RandomTask>)> {
    (1..=max_nodes).prop_flat_map(move |nodes| {
        let task = (
            0..nodes,
            1u32..100,
            proptest::collection::vec(0..n_data, 0..3),
            0..n_data,
        )
            .prop_map(|(node, d, reads, write)| RandomTask {
                node,
                duration: f64::from(d) * 1e-3,
                reads,
                write,
            });
        (Just(nodes), proptest::collection::vec(task, 1..max_tasks))
    })
}

fn build(nodes: u32, tasks: &[RandomTask]) -> flexdist_runtime::TaskGraph {
    let mut b = GraphBuilder::new();
    let data: Vec<_> = (0..16).map(|i| b.add_data(i % nodes, 4096)).collect();
    for t in tasks {
        let mut accesses: Vec<Access> = t
            .reads
            .iter()
            .filter(|&&d| d as usize != t.write as usize)
            .map(|&d| Access::read(data[d as usize]))
            .collect();
        accesses.push(Access::read_write(data[t.write as usize]));
        b.submit(TaskSpec {
            node: t.node,
            duration: t.duration,
            flops: t.duration * 1e9,
            priority: 0,
            label: "rand",
            accesses,
        });
    }
    b.build()
}

fn machine(nodes: u32, workers: u32) -> MachineConfig {
    let mut m = MachineConfig::test_machine(nodes, workers);
    m.latency = 1e-6;
    m.bandwidth = 1e9;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random STF graph completes, and the makespan respects both the
    /// critical-path and total-work lower bounds.
    #[test]
    fn makespan_lower_bounds((nodes, tasks) in arb_graph(4, 16, 60), workers in 1u32..4) {
        let g = build(nodes, &tasks);
        let r = simulate(&g, &machine(nodes, workers));
        prop_assert_eq!(r.tasks, g.n_tasks());
        prop_assert!(r.makespan >= g.critical_path() - 1e-9,
            "makespan {} < critical path {}", r.makespan, g.critical_path());
        let capacity = f64::from(nodes * workers);
        prop_assert!(r.makespan >= g.sequential_time() / capacity - 1e-9);
        // And the trivial upper bound: serial execution plus all transfers.
        let max_transfer = 1e-6 + 4096.0 / 1e9;
        let upper = g.sequential_time() + r.messages as f64 * max_transfer + 1e-9;
        prop_assert!(r.makespan <= upper, "makespan {} > serial bound {}", r.makespan, upper);
    }

    /// Busy time equals the sum of task durations (work conservation), and
    /// utilization never exceeds 1.
    #[test]
    fn work_conservation((nodes, tasks) in arb_graph(3, 12, 50), workers in 1u32..4) {
        let g = build(nodes, &tasks);
        let r = simulate(&g, &machine(nodes, workers));
        let busy: f64 = r.busy_per_node.iter().sum();
        prop_assert!((busy - g.sequential_time()).abs() < 1e-9);
        prop_assert!(r.utilization() <= 1.0 + 1e-9);
    }

    /// Messages are conserved: byte count = messages × data size, and the
    /// count never exceeds total remote reads.
    #[test]
    fn message_accounting((nodes, tasks) in arb_graph(4, 16, 60)) {
        let g = build(nodes, &tasks);
        let r = simulate(&g, &machine(nodes, 2));
        prop_assert_eq!(r.bytes_sent, r.messages * 4096);
        let total_reads: u64 = tasks.iter().map(|t| t.reads.len() as u64 + 1).sum();
        prop_assert!(r.messages <= total_reads);
    }

    /// Determinism: identical graphs and machines give identical reports.
    #[test]
    fn deterministic((nodes, tasks) in arb_graph(4, 16, 40)) {
        let g = build(nodes, &tasks);
        let m = machine(nodes, 2);
        prop_assert_eq!(simulate(&g, &m), simulate(&g, &m));
    }

    /// Disabling the replica cache can only increase messages and makespan
    /// never decreases below the cached run by more than numerical noise.
    #[test]
    fn cache_monotonicity((nodes, tasks) in arb_graph(4, 12, 40)) {
        let g = build(nodes, &tasks);
        let cached = simulate(&g, &machine(nodes, 2));
        let mut m = machine(nodes, 2);
        m.replica_cache = false;
        let uncached = simulate(&g, &m);
        prop_assert!(uncached.messages >= cached.messages);
    }

    /// Adding workers never hurts: makespan is non-increasing in the worker
    /// count for communication-free graphs.
    #[test]
    fn more_workers_helps_without_comm(durations in proptest::collection::vec(1u32..50, 1..40)) {
        let mut b = GraphBuilder::new();
        for &d in &durations {
            let h = b.add_data(0, 8);
            b.submit(TaskSpec {
                node: 0,
                duration: f64::from(d) * 1e-3,
                flops: 0.0,
                priority: 0,
                label: "w",
                accesses: vec![Access::write(h)],
            });
        }
        let g = b.build();
        let mut prev = f64::INFINITY;
        for workers in [1u32, 2, 4, 8] {
            let r = simulate(&g, &machine(1, workers));
            prop_assert!(r.makespan <= prev + 1e-9);
            prev = r.makespan;
        }
    }
}
