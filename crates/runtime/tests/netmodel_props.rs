//! Property-based tests of the shared-bandwidth max-min allocator
//! (`flexdist_runtime::max_min_rates`): conservation, max-min fairness,
//! and monotonicity on random flow sets.

use flexdist_runtime::{max_min_rates, FlowPorts};
use proptest::prelude::*;

/// Random port capacities (strictly positive) and flows crossing two or
/// four *distinct* ports each — the shapes the simulator's engine
/// produces (NIC pairs, NIC pairs plus uplink pairs).
fn arb_network() -> impl Strategy<Value = (Vec<f64>, Vec<FlowPorts>)> {
    (4usize..12).prop_flat_map(|np| {
        let caps = proptest::collection::vec(1u32..80, np..=np).prop_map(|raw| {
            raw.into_iter()
                .map(|c| f64::from(c) / 10.0)
                .collect::<Vec<f64>>()
        });
        let flow = (0u32..64, 0u32..64, 0u32..64, 0u32..64, 0u32..2).prop_map(
            move |(a, b, c, d, four)| {
                let np = np as u32;
                // Make the crossed ports distinct by linear probing.
                let mut picked: Vec<u32> = Vec::new();
                for raw in [a, b, c, d] {
                    let mut p = raw % np;
                    while picked.contains(&p) {
                        p = (p + 1) % np;
                    }
                    picked.push(p);
                }
                if four == 1 && np >= 4 {
                    FlowPorts::quad(picked[0], picked[1], picked[2], picked[3])
                } else {
                    FlowPorts::pair(picked[0], picked[1])
                }
            },
        );
        (caps, proptest::collection::vec(flow, 1..16))
    })
}

/// Rate of the fastest flow crossing port `p`.
fn max_rate_on(p: u32, flows: &[FlowPorts], rates: &[f64]) -> f64 {
    flows
        .iter()
        .zip(rates)
        .filter(|(f, _)| f.ports().contains(&p))
        .map(|(_, &r)| r)
        .fold(0.0, f64::max)
}

/// Total rate crossing port `p`.
fn load_on(p: u32, flows: &[FlowPorts], rates: &[f64]) -> f64 {
    flows
        .iter()
        .zip(rates)
        .filter(|(f, _)| f.ports().contains(&p))
        .map(|(_, &r)| r)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation: on every port, the allocated rates of the flows
    /// crossing it never exceed its capacity.
    #[test]
    fn conservation((caps, flows) in arb_network()) {
        let rates = max_min_rates(&flows, &caps);
        prop_assert_eq!(rates.len(), flows.len());
        for (p, &cap) in caps.iter().enumerate() {
            let load = load_on(p as u32, &flows, &rates);
            prop_assert!(
                load <= cap * (1.0 + 1e-9) + 1e-12,
                "port {p} carries {load} over capacity {cap}"
            );
        }
    }

    /// Max-min fairness: every flow is bottlenecked — it crosses some
    /// saturated port on which no other flow gets a strictly higher rate.
    /// (Raising the flow's rate would then necessarily lower a flow that
    /// is no better off, the defining property of the max-min optimum.)
    #[test]
    fn max_min_fairness((caps, flows) in arb_network()) {
        let rates = max_min_rates(&flows, &caps);
        for (i, f) in flows.iter().enumerate() {
            // Positive capacities everywhere => every flow gets a
            // positive rate.
            prop_assert!(rates[i] > 0.0, "flow {i} starved: {rates:?}");
            let tol = 1e-6;
            let bottleneck = f.ports().iter().any(|&p| {
                let cap = caps[p as usize];
                let saturated = load_on(p, &flows, &rates) >= cap * (1.0 - tol);
                saturated && rates[i] >= max_rate_on(p, &flows, &rates) * (1.0 - tol)
            });
            prop_assert!(
                bottleneck,
                "flow {i} ({:?}) has no bottleneck port: rates {rates:?} caps {caps:?}",
                f.ports()
            );
        }
    }

    /// Monotonicity, part 1: on arbitrary topologies, adding a flow never
    /// raises the *minimum* allocated rate. (Global per-flow monotonicity
    /// is false for max-min fairness — a new flow can bottleneck an
    /// intermediary earlier and free capacity for someone else, e.g.
    /// flows {A}, {A,B}, {B} at 1/2 each gain a fourth flow on {B}:
    /// {A,B} drops to 1/3 and {A} *rises* to 2/3. The minimum, which is
    /// the first saturation water level `min_p cap_p / active_p`, can
    /// only fall as the flow set grows.)
    #[test]
    fn arrival_never_raises_the_minimum_rate((caps, flows) in arb_network()) {
        if flows.len() < 2 {
            return Ok(());
        }
        let without = max_min_rates(&flows[..flows.len() - 1], &caps);
        let with = max_min_rates(&flows, &caps);
        let min_without = without.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        let min_with = with.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        prop_assert!(
            min_with <= min_without * (1.0 + 1e-9) + 1e-12,
            "minimum rate rose from {min_without} to {min_with} on arrival"
        );
    }

    /// Monotonicity, part 2: on a single shared link (every flow crosses
    /// port 0, private second ports — the model's "concurrent flows on a
    /// link split capacity" situation), a new flow never increases any
    /// existing flow's rate, so none of them can finish earlier. Each
    /// rate is `min(private_cap_i, L)` with `L` the shared water level
    /// solving `Σ min(private_cap_i, L) = cap_0`; an arrival only adds a
    /// term, so `L` — and every rate — weakly falls.
    #[test]
    fn arrival_on_a_shared_link_never_speeds_anyone_up(
        link_cap in 1u32..40,
        privates in proptest::collection::vec(1u32..40, 2..10),
    ) {
        let n = privates.len();
        let mut caps = vec![f64::from(link_cap) / 10.0];
        caps.extend(privates.iter().map(|&c| f64::from(c) / 10.0));
        let flows: Vec<FlowPorts> =
            (1..=n as u32).map(|i| FlowPorts::pair(0, i)).collect();
        let without = max_min_rates(&flows[..n - 1], &caps);
        let with = max_min_rates(&flows, &caps);
        for i in 0..n - 1 {
            prop_assert!(
                with[i] <= without[i] * (1.0 + 1e-9) + 1e-12,
                "flow {i} sped up from {} to {} when the link gained a flow",
                without[i],
                with[i]
            );
        }
    }

    /// The allocation is scale-invariant: scaling every capacity scales
    /// every rate.
    #[test]
    fn scale_invariance((caps, flows) in arb_network(), scale in 1u32..50) {
        let rates = max_min_rates(&flows, &caps);
        let k = f64::from(scale) / 7.0;
        let scaled_caps: Vec<f64> = caps.iter().map(|c| c * k).collect();
        let scaled = max_min_rates(&flows, &scaled_caps);
        for (r, s) in rates.iter().zip(&scaled) {
            prop_assert!((s - r * k).abs() <= (r * k).abs() * 1e-9 + 1e-12);
        }
    }
}
