//! Cluster planner: given the number of nodes your reservation actually got,
//! rank every distribution strategy this library knows — the paper's
//! practical scenario ("it is common that the number of available nodes is
//! not of the form P = r²", §I).
//!
//! Usage: `cargo run --release --example cluster_planner -- [P] [tiles]`
//! (defaults: P = 23, tiles = 60).

use flexdist::core::{cost, g2dbc, gcrm, sbc, twodbc, Pattern};
use flexdist::dist::{cholesky_comm_volume, lu_comm_volume, TileAssignment};
use flexdist::factor::{Operation, SimSetup};
use flexdist::kernels::KernelCostModel;
use flexdist::runtime::MachineConfig;

struct Candidate {
    name: String,
    nodes: u32,
    pattern: Pattern,
    symmetric_only: bool,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let p: u32 = args
        .next()
        .map(|a| a.parse().expect("P must be an integer"))
        .unwrap_or(23);
    let t: usize = args
        .next()
        .map(|a| a.parse().expect("tiles must be an integer"))
        .unwrap_or(60);

    println!("Planning a factorization on {p} nodes ({t}x{t} tiles)\n");

    let mut candidates = Vec::new();

    // Plain 2DBC with all nodes (however bad the shape is).
    let (r, c) = twodbc::best_shape(p);
    candidates.push(Candidate {
        name: format!("2DBC {r}x{c} (all nodes)"),
        nodes: p,
        pattern: twodbc::two_dbc(r, c),
        symmetric_only: false,
    });
    // Best 2DBC using possibly fewer nodes.
    let (q, r2, c2) = twodbc::best_2dbc_at_most(p);
    if q != p {
        candidates.push(Candidate {
            name: format!("2DBC {r2}x{c2} ({q} nodes)"),
            nodes: q,
            pattern: twodbc::two_dbc(r2, c2),
            symmetric_only: false,
        });
    }
    // G-2DBC with all nodes.
    let g = g2dbc::g2dbc(p);
    candidates.push(Candidate {
        name: format!("G-2DBC {}x{}", g.rows(), g.cols()),
        nodes: p,
        pattern: g,
        symmetric_only: false,
    });
    // Largest SBC at most P (symmetric ops only).
    if let Some(ps) = sbc::largest_admissible_at_most(p) {
        let pat = sbc::sbc_extended(ps).expect("admissible");
        candidates.push(Candidate {
            name: format!("SBC {}x{} ({ps} nodes)", pat.rows(), pat.cols()),
            nodes: ps,
            pattern: pat,
            symmetric_only: true,
        });
    }
    // GCR&M with all nodes (symmetric ops only).
    let search = gcrm::search(
        p,
        &gcrm::GcrmConfig {
            n_seeds: 40,
            ..Default::default()
        },
    )
    .expect("GCR&M covers all P");
    candidates.push(Candidate {
        name: format!("GCR&M {}x{}", search.best.rows(), search.best.cols()),
        nodes: p,
        pattern: search.best,
        symmetric_only: true,
    });

    let cost_model = KernelCostModel::uniform(500, 30.0);

    println!(
        "{:<24} {:>5} | {:>8} {:>12} {:>10} | {:>8} {:>12} {:>10}",
        "strategy", "nodes", "T(LU)", "LU msgs", "LU time", "T(Chol)", "Chol msgs", "Chol time"
    );
    println!("{}", "-".repeat(110));
    for cand in &candidates {
        let assignment = TileAssignment::extended(&cand.pattern, t);
        let machine = MachineConfig::paper_testbed(cand.nodes.max(cand.pattern.n_nodes()));

        let (lu_t, lu_msgs, lu_time) = if cand.symmetric_only {
            ("-".into(), "-".into(), "-".into())
        } else {
            let rep = SimSetup {
                operation: Operation::Lu,
                t,
                cost: cost_model,
                machine: machine.clone(),
            }
            .run_assignment(&assignment);
            (
                format!("{:.2}", cost::lu_cost(&cand.pattern)),
                format!("{}", lu_comm_volume(&assignment).total()),
                format!("{:.2}s", rep.makespan),
            )
        };

        let chol_rep = SimSetup {
            operation: Operation::Cholesky,
            t,
            cost: cost_model,
            machine,
        }
        .run_assignment(&assignment);
        let chol_cost = cost::symmetric_cost(&cand.pattern, 4096);

        println!(
            "{:<24} {:>5} | {:>8} {:>12} {:>10} | {:>8.2} {:>12} {:>9.2}s",
            cand.name,
            cand.nodes,
            lu_t,
            lu_msgs,
            lu_time,
            chol_cost,
            cholesky_comm_volume(&assignment).total(),
            chol_rep.makespan
        );
    }

    println!(
        "\nReference costs: 2*sqrt(P) = {:.2}, sqrt(2P) = {:.2}, sqrt(3P/2) = {:.2}",
        cost::ideal_lu_cost(p),
        cost::sbc_cost_reference(p),
        cost::gcrm_cost_reference(p)
    );
}
