//! Quickstart: build distribution patterns for an awkward node count,
//! compare their communication costs, and simulate a small LU factorization.
//!
//! Run with `cargo run --release --example quickstart`.

use flexdist::core::{cost, g2dbc, gcrm, twodbc};
use flexdist::factor::{Operation, SimSetup};
use flexdist::kernels::KernelCostModel;
use flexdist::runtime::MachineConfig;

fn main() {
    // 23 nodes: a prime, the paper's motivating worst case for plain 2DBC.
    let p = 23u32;

    println!("== Patterns for P = {p} ==\n");

    let flat = twodbc::two_dbc(23, 1);
    println!(
        "2DBC 23x1 grid:            LU cost T = {:>7.3}",
        cost::lu_cost(&flat)
    );

    let (q, r, c) = twodbc::best_2dbc_at_most(p);
    println!(
        "best 2DBC with <= P nodes: {r}x{c} using {q} nodes, T = {:>7.3}",
        (r + c) as f64
    );

    let g = g2dbc::g2dbc(p);
    println!(
        "G-2DBC (all {p} nodes):     {}x{} pattern,      T = {:>7.3}  (ideal 2*sqrt(P) = {:.3})",
        g.rows(),
        g.cols(),
        cost::lu_cost(&g),
        cost::ideal_lu_cost(p)
    );

    println!("\nThe G-2DBC pattern itself (each node appears b(b-1) times):\n{g}");

    // Symmetric case: GCR&M pattern for Cholesky.
    let search = gcrm::search(
        p,
        &gcrm::GcrmConfig {
            n_seeds: 30,
            ..Default::default()
        },
    )
    .expect("GCR&M always finds a pattern");
    println!(
        "GCR&M ({}x{}):  Cholesky cost T = {:.3}   (SBC reference sqrt(2P) = {:.3})",
        search.best.rows(),
        search.best.cols(),
        search.best_cost,
        cost::sbc_cost_reference(p)
    );

    // Simulate a small LU on the paper-like machine.
    println!("\n== Simulated LU, 80x80 tiles of 500x500 (m = 40,000) ==\n");
    let setup = SimSetup {
        operation: Operation::Lu,
        t: 80,
        cost: KernelCostModel::uniform(500, 30.0),
        machine: MachineConfig::paper_testbed(p),
    };
    for (name, pattern) in [("2DBC 23x1", &flat), ("G-2DBC", &g)] {
        let rep = setup.run(pattern);
        println!(
            "{name:>10}: makespan {:>7.3} s | {:>8.1} GFlop/s total | {:>7} messages",
            rep.makespan,
            rep.gflops(),
            rep.messages
        );
    }
}
