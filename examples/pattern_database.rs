//! Build the pattern database the paper's conclusion envisions: "one could
//! imagine to provide a database containing, for each possible value of P,
//! a very efficient pattern for the symmetric case" (§VI).
//!
//! Produces `patterns_lu.json` and `patterns_sym.json` with, per node
//! count, the best pattern over all applicable schemes, and prints a
//! summary table with the SBC / 2DBC references.
//!
//! Usage: `cargo run --release --example pattern_database -- [P_max] [seeds]`
//! (defaults: P_max = 32, seeds = 30).

use flexdist::core::db::{PatternDb, Purpose};
use flexdist::core::{cost, sbc, twodbc};

fn main() {
    let mut args = std::env::args().skip(1);
    let p_max: u32 = args.next().map(|a| a.parse().unwrap()).unwrap_or(32);
    let seeds: u64 = args.next().map(|a| a.parse().unwrap()).unwrap_or(30);

    let lu = PatternDb::build(Purpose::Lu, p_max, seeds).expect("LU database");
    let sym = PatternDb::build(Purpose::Symmetric, p_max, seeds).expect("symmetric database");

    println!(
        "{:>4} | {:>22} | {:>26} | {:>8} {:>8}",
        "P", "LU best (scheme, T)", "symmetric best (scheme, T)", "SBC", "2DBC-sym"
    );
    println!("{}", "-".repeat(84));
    for p in 2..=p_max {
        let le = lu.get(p).expect("covered");
        let se = sym.get(p).expect("covered");
        let (r, c) = twodbc::best_shape(p);
        println!(
            "{:>4} | {:>14?} {:>7.3} | {:>18?} {:>7.3} | {:>8} {:>8.0}",
            p,
            le.scheme,
            le.cost,
            se.scheme,
            se.cost,
            sbc::analytic_cost(p).map_or("-".into(), |t| format!("{t:.0}")),
            (r + c - 1) as f64,
        );
    }
    println!(
        "\nReference envelopes at P = {p_max}: sqrt(2P) = {:.3}, sqrt(3P/2) = {:.3}",
        cost::sbc_cost_reference(p_max),
        cost::gcrm_cost_reference(p_max)
    );

    std::fs::write("patterns_lu.json", lu.to_json()).expect("write patterns_lu.json");
    std::fs::write("patterns_sym.json", sym.to_json()).expect("write patterns_sym.json");
    println!(
        "Wrote {} LU and {} symmetric patterns to patterns_lu.json / patterns_sym.json",
        lu.len(),
        sym.len()
    );

    // Round-trip sanity: the files load back identically.
    let back = PatternDb::from_json(&std::fs::read_to_string("patterns_sym.json").unwrap())
        .expect("parse back");
    assert_eq!(back.len(), sym.len());
}
