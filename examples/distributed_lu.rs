//! Distributed LU with the G-2DBC pattern, executed for real, plus a
//! side-by-side simulation of the same run on the paper's cluster model.
//!
//! Usage: `cargo run --release --example distributed_lu -- [P] [t] [nb]`
//! (defaults: P = 10, t = 12, nb = 32).

use flexdist::core::{cost, g2dbc};
use flexdist::dist::{lu_comm_volume, TileAssignment};
use flexdist::factor::residual::lu_residual;
use flexdist::factor::{build_graph, execute, Operation, SimSetup};
use flexdist::kernels::{KernelCostModel, TiledMatrix};
use flexdist::runtime::MachineConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let p: u32 = args.next().map(|a| a.parse().unwrap()).unwrap_or(10);
    let t: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(12);
    let nb: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(32);

    let pattern = g2dbc::g2dbc(p);
    println!(
        "G-2DBC for P = {p}: {}x{} pattern, T = {:.3} (bound {:.3})\n",
        pattern.rows(),
        pattern.cols(),
        cost::lu_cost(&pattern),
        cost::g2dbc_cost_bound(p)
    );

    let assignment = TileAssignment::cyclic(&pattern, t);
    let comm = lu_comm_volume(&assignment);
    println!(
        "Exact comm volume on {t}x{t} tiles: {} sends (Eq. 1 estimate {:.0})",
        comm.total(),
        flexdist::dist::comm::lu_comm_estimate(&pattern, t)
    );

    // Real execution with residual check.
    let a0 = TiledMatrix::random_diag_dominant(t, nb, 7);
    let tl = build_graph(
        Operation::Lu,
        &assignment,
        &KernelCostModel::uniform(nb, 10.0),
    );
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let (factored, report) = execute(&tl, a0.clone(), threads);
    assert!(report.error.is_none(), "kernel error: {:?}", report.error);
    let res = lu_residual(&a0, &factored);
    println!(
        "Real run: {} tasks, residual ||A - LU||/||A|| = {res:.3e}",
        report.tasks
    );
    assert!(res < 1e-10);

    // And actually *solve* a system with the factors.
    let b = flexdist::factor::solve::random_block_vector(t, nb, 2718);
    let x = flexdist::factor::lu_solve(&factored, &b);
    let solve_res = flexdist::factor::solve_residual(&a0, &x, &b);
    println!("Solve  A x = b: residual ||Ax - b||/||b|| = {solve_res:.3e}");
    assert!(solve_res < 1e-10);

    // Cluster simulation of the same graph at paper scale.
    let sim = SimSetup {
        operation: Operation::Lu,
        t: 120,
        cost: KernelCostModel::uniform(500, 30.0),
        machine: MachineConfig::paper_testbed(p),
    }
    .run(&pattern);
    println!(
        "Simulated at m = 60,000 on {p} nodes: {:.2} s, {:.0} GFlop/s, {} messages",
        sim.makespan,
        sim.gflops(),
        sim.messages
    );
    println!("OK");
}
