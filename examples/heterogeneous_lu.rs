//! Heterogeneous nodes (the paper's §VI outlook): partition the matrix by
//! node speed with the column-based rectangle partitioner, then simulate LU
//! on a cluster with unequal core counts and verify the numerics with a
//! real run.
//!
//! Usage: `cargo run --release --example heterogeneous_lu`

use flexdist::dist::TileAssignment;
use flexdist::dist::{lu_comm_volume, LoadReport};
use flexdist::factor::residual::lu_residual;
use flexdist::factor::{build_graph, execute, Operation, SimSetup};
use flexdist::hetero::{column_partition, rect_cyclic_pattern, rect_tile_assignment, NodeSpeeds};
use flexdist::kernels::{KernelCostModel, TiledMatrix};
use flexdist::runtime::MachineConfig;

fn main() {
    // 6 nodes: two 3x-fast, four standard.
    let workers: Vec<u32> = vec![12, 12, 4, 4, 4, 4];
    let speeds = NodeSpeeds::from_worker_counts(&workers);
    let res = column_partition(&speeds);
    println!(
        "Rectangle partition for speeds {:?}: {} columns, half-perimeter sum {:.3} (lower bound {:.3})",
        speeds.as_slice(),
        res.columns,
        res.cost,
        res.lower_bound
    );
    for r in res.partition.rects() {
        println!(
            "  node {}: [{:.3}, {:.3}] x [{:.3}, {:.3}]  (area {:.3})",
            r.node,
            r.x0,
            r.x1,
            r.y0,
            r.y1,
            r.area()
        );
    }

    // Simulate LU at scale on the matching machine.
    let t = 60;
    let assignment = rect_tile_assignment(&res.partition, t);
    let load = LoadReport::new(&assignment, flexdist::dist::load::LoadKind::Lu);
    println!(
        "\nTile shares: {:?} (target {:?})",
        load.tiles,
        speeds.tile_quotas(t)
    );
    println!(
        "LU comm volume: {} tile sends",
        lu_comm_volume(&assignment).total()
    );

    let mut machine = MachineConfig::paper_testbed(workers.len() as u32);
    machine.per_node_workers = Some(workers);
    let cyclic = TileAssignment::cyclic(&rect_cyclic_pattern(&res.partition, 12), t);
    for (name, a) in [("static blocks", &assignment), ("cyclic pattern", &cyclic)] {
        let rep = SimSetup {
            operation: Operation::Lu,
            t,
            cost: KernelCostModel::uniform(500, 30.0),
            machine: machine.clone(),
        }
        .run_assignment(a);
        println!(
            "Simulated LU with {name}: {:.2} s, {:.0} GFlop/s, utilization {:.0}%",
            rep.makespan,
            rep.gflops(),
            100.0 * rep.utilization()
        );
    }

    // Real (small) run to validate the distribution end to end.
    let (t2, nb) = (10, 24);
    let a0 = TiledMatrix::random_diag_dominant(t2, nb, 3);
    let small = rect_tile_assignment(&res.partition, t2);
    let tl = build_graph(Operation::Lu, &small, &KernelCostModel::uniform(nb, 10.0));
    let (factored, report) = execute(&tl, a0.clone(), 4);
    assert!(report.error.is_none());
    let resid = lu_residual(&a0, &factored);
    println!("Real run residual: {resid:.3e}");
    assert!(resid < 1e-10);
    println!("OK");
}
