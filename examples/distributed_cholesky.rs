//! Distributed Cholesky, for real: factorize an actual SPD matrix with the
//! task DAG mapped onto simulated nodes by a GCR&M pattern, executed on a
//! thread pool with the real `f64` kernels, and verify the residual.
//!
//! Usage: `cargo run --release --example distributed_cholesky -- [P] [t] [nb]`
//! (defaults: P = 13, t = 12, nb = 32).

use flexdist::core::gcrm;
use flexdist::dist::{cholesky_comm_volume, LoadReport, TileAssignment};
use flexdist::factor::residual::cholesky_residual;
use flexdist::factor::{build_graph, execute, Operation};
use flexdist::kernels::{KernelCostModel, TiledMatrix};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: u32 = args.next().map(|a| a.parse().unwrap()).unwrap_or(13);
    let t: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(12);
    let nb: usize = args.next().map(|a| a.parse().unwrap()).unwrap_or(32);

    println!("Distributed Cholesky: P = {p}, {t}x{t} tiles of {nb}x{nb}\n");

    // 1. Find a good symmetric pattern with GCR&M.
    let search = gcrm::search(
        p,
        &gcrm::GcrmConfig {
            n_seeds: 30,
            ..Default::default()
        },
    )
    .expect("GCR&M covers every P");
    println!(
        "GCR&M pattern: {}x{}, Cholesky cost T = {:.3}",
        search.best.rows(),
        search.best.cols(),
        search.best_cost
    );

    // 2. Replicate it over the matrix (extended diagonal assignment).
    let assignment = TileAssignment::extended(&search.best, t);
    let load = LoadReport::new(&assignment, flexdist::dist::load::LoadKind::Cholesky);
    println!(
        "Load balance: max/mean = {:.3}, cv = {:.3}",
        load.max_over_mean(),
        load.coefficient_of_variation()
    );
    let comm = cholesky_comm_volume(&assignment);
    println!(
        "Communication: {} panel + {} trailing = {} tile sends",
        comm.panel,
        comm.trailing,
        comm.total()
    );

    // 3. Build the task graph and execute it with real kernels.
    let a0 = TiledMatrix::random_spd(t, nb, 42);
    let tl = build_graph(
        Operation::Cholesky,
        &assignment,
        &KernelCostModel::uniform(nb, 10.0),
    );
    println!(
        "Task graph: {} tasks, {} edges, critical path {:.1}% of sequential",
        tl.graph.n_tasks(),
        tl.graph.n_edges(),
        100.0 * tl.graph.critical_path() / tl.graph.sequential_time()
    );

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let start = std::time::Instant::now();
    let (factored, report) = execute(&tl, a0.clone(), threads);
    let wall = start.elapsed();

    if let Some(e) = report.error {
        eprintln!("kernel error: {e}");
        std::process::exit(1);
    }

    // 4. Verify.
    let res = cholesky_residual(&a0, &factored);
    println!(
        "\nExecuted {} tasks on {threads} threads in {wall:?} ({} owner-remote reads)",
        report.tasks, report.remote_reads
    );
    println!("Relative residual ||A - L*L^T||_F / ||A||_F = {res:.3e}");
    assert!(res < 1e-10, "residual too large");
    println!("OK");
}
