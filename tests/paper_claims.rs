//! The paper's headline claims, as executable assertions.
//!
//! Each test cites the paper section it checks. These are the invariants a
//! reviewer would spot-check; the figure-level reproductions live in the
//! `flexdist-bench` harnesses.

use flexdist::core::{cost, g2dbc, gcrm, sbc, twodbc};
use flexdist::dist::{lu_comm_volume, LoadReport, TileAssignment};

/// §IV, Lemma 1: the G-2DBC pattern is perfectly balanced — every node
/// appears exactly `b(b−1)` times — for *every* node count.
#[test]
fn lemma_1_balance_for_all_p_up_to_500() {
    for p in 1u32..=500 {
        let params = g2dbc::G2dbcParams::new(p);
        let pat = g2dbc::g2dbc(p);
        assert!(pat.is_balanced(), "P = {p}");
        let per_node = pat.node_cell_counts()[0];
        let expect = if params.c == 0 || params.b == 1 {
            1
        } else {
            params.b * (params.b - 1)
        };
        assert_eq!(per_node, expect, "P = {p}");
    }
}

/// §IV, Lemma 2: `T(G-2DBC) ≤ 2√P + 2/√P` for every node count.
#[test]
fn lemma_2_bound_for_all_p_up_to_2000() {
    for p in 1u32..=2000 {
        let t = g2dbc::G2dbcParams::new(p).lu_cost();
        assert!(
            t <= cost::g2dbc_cost_bound(p) + 1e-9,
            "P = {p}: {t} > {}",
            cost::g2dbc_cost_bound(p)
        );
    }
}

/// §IV-B: "if c = 0 (i.e. if P = p² or if P = p(p+1)), the G-2DBC pattern
/// reduces to the standard 2DBC pattern".
#[test]
fn g2dbc_reduces_to_2dbc_at_exact_fits() {
    for q in 1u32..15 {
        for p in [q * q, q * (q + 1)] {
            let params = g2dbc::G2dbcParams::new(p);
            assert_eq!(params.c, 0, "P = {p} should be an exact fit");
            let g = g2dbc::g2dbc(p);
            assert_eq!(
                cost::lu_cost(&g),
                twodbc::best_2dbc_cost(p),
                "P = {p}: G-2DBC cost differs from best 2DBC"
            );
        }
    }
}

/// §I / §IV-C: "the cost of G-2DBC closely follows the 2√P value, and
/// allows to significantly improve the volume of communications over 2DBC
/// for many values of P" — at least 20% cost reduction on at least a third
/// of 2..200 (primes and bad composites).
#[test]
fn g2dbc_improves_many_node_counts() {
    let improved = (2u32..=200)
        .filter(|&p| g2dbc::G2dbcParams::new(p).lu_cost() < 0.8 * twodbc::best_2dbc_cost(p))
        .count();
    assert!(improved > 66, "only {improved} of 199 improved by >20%");
}

/// §V: GCR&M provides patterns "for all values of P" with cost below the
/// SBC reference √(2P) + 0.5, and Eq. 3 always admits at least one size.
#[test]
fn gcrm_covers_every_p_up_to_60() {
    for p in 2u32..=60 {
        let sizes = gcrm::eligible_sizes(p, 6.0);
        assert!(!sizes.is_empty(), "P = {p}: no eligible size");
        let res = gcrm::search(
            p,
            &gcrm::GcrmConfig {
                n_seeds: 8,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("P = {p}: {e}"));
        assert!(
            res.best_cost <= cost::sbc_cost_reference(p) + 0.5,
            "P = {p}: GCR&M cost {} vs sqrt(2P) = {}",
            res.best_cost,
            cost::sbc_cost_reference(p)
        );
    }
}

/// §V-B: GCR&M reaches "a cost either similar to SBC, or even lower in
/// many cases" — check it beats plain SBC for at least half the
/// SBC-admissible counts in range.
#[test]
fn gcrm_beats_sbc_on_many_admissible_counts() {
    let admissible: Vec<u32> = sbc::admissible_up_to(45)
        .into_iter()
        .filter(|&p| p >= 6)
        .collect();
    let mut wins = 0;
    for &p in &admissible {
        let sbc_cost = sbc::analytic_cost(p).expect("admissible");
        let res = gcrm::search(
            p,
            &gcrm::GcrmConfig {
                n_seeds: 30,
                ..Default::default()
            },
        )
        .expect("covers all P");
        if res.best_cost < sbc_cost - 1e-9 {
            wins += 1;
        }
        // Never dramatically worse.
        assert!(res.best_cost <= sbc_cost + 0.6, "P = {p}");
    }
    assert!(
        2 * wins >= admissible.len(),
        "GCR&M beat SBC only {wins}/{} times",
        admissible.len()
    );
}

/// §III: the communication-cost metric is a faithful proxy — across all
/// 2DBC shapes of a fixed P, exact LU volumes are ordered exactly as T.
#[test]
fn cost_metric_orders_exact_volumes() {
    let p = 36u32;
    let t = 72;
    let mut measured: Vec<(f64, u64)> = twodbc::factor_pairs(p)
        .into_iter()
        .map(|(r, c)| {
            let pat = twodbc::two_dbc(r, c);
            let vol = lu_comm_volume(&TileAssignment::cyclic(&pat, t)).trailing;
            (cost::lu_cost(&pat), vol)
        })
        .collect();
    measured.sort_by(|a, b| a.0.total_cmp(&b.0));
    for w in measured.windows(2) {
        assert!(
            w[0].1 <= w[1].1,
            "volume ordering violates cost ordering: {measured:?}"
        );
    }
}

/// §IV-D: "the workload between the processors in the trailing matrix
/// remains very well balanced, even if the pattern is larger" — G-2DBC's
/// flop-weighted imbalance stays within a few percent of square 2DBC's.
#[test]
fn g2dbc_load_balance_comparable_to_square_2dbc() {
    let t = 120;
    let g = LoadReport::new(
        &TileAssignment::cyclic(&g2dbc::g2dbc(23), t),
        flexdist::dist::load::LoadKind::Lu,
    );
    let square = LoadReport::new(
        &TileAssignment::cyclic(&twodbc::two_dbc(5, 5), t),
        flexdist::dist::load::LoadKind::Lu,
    );
    assert!(
        g.max_over_mean() < square.max_over_mean() + 0.05,
        "G-2DBC {} vs square {}",
        g.max_over_mean(),
        square.max_over_mean()
    );
}

/// §V intro, Eq. 3: sizes violating the balance condition are rejected,
/// and the bound is exactly the paper's inequality.
#[test]
fn eq3_is_enforced() {
    for p in 2u32..40 {
        for r in 2usize..40 {
            let expected = (r * (r - 1)).div_ceil(p as usize) * p as usize <= r * r;
            assert_eq!(
                gcrm::size_is_balanceable(p, r),
                expected,
                "P = {p}, r = {r}"
            );
            if !expected {
                assert!(gcrm::run_once(p, r, 0, gcrm::LoadMetric::Colrows).is_err());
            }
        }
    }
}

/// §III, Eq. 1/2: the closed-form volume estimates predict not just the
/// *counted* communications but the traffic a real message-passing run
/// actually puts on the wire. The distributed executor's measured
/// trailing-class message count equals the exact counters at every size
/// (the conformance guarantee), and its relative distance to the
/// closed forms shrinks as the tile count grows — the same tolerances
/// the counter-vs-estimate test in `flexdist-dist` uses.
#[test]
fn eq_1_and_2_predict_measured_wire_traffic() {
    use flexdist::dist::cholesky_comm_volume;
    use flexdist::dist::comm::{cholesky_comm_estimate, lu_comm_estimate};
    use flexdist::factor::{build_graph, execute_distributed, Operation};
    use flexdist::kernels::{KernelCostModel, TiledMatrix};

    // 1x1 tiles: the traffic pattern is what matters here, not the flops.
    let nb = 1;

    let pat = twodbc::two_dbc(3, 2);
    for (t, tol) in [(12usize, 0.35), (48, 0.12)] {
        let a = TileAssignment::cyclic(&pat, t);
        let tl = build_graph(Operation::Lu, &a, &KernelCostModel::uniform(nb, 30.0));
        let a0 = TiledMatrix::random_diag_dominant(t, nb, 3);
        let (_, report) = execute_distributed(&tl, &a, &a0).expect("protocol clean");
        assert!(report.error.is_none(), "t = {t}");
        assert_eq!(report.wire, lu_comm_volume(&a), "LU t = {t}: conformance");
        let measured = report.wire.trailing as f64;
        let est = lu_comm_estimate(&pat, t);
        let rel = (est - measured).abs() / est;
        assert!(
            rel < tol,
            "LU t = {t}: measured {measured}, Eq. 1 says {est}, rel err {rel}"
        );
    }

    let pat = sbc::sbc_basic(21).expect("21 admissible");
    for (t, tol) in [(21usize, 0.35), (84, 0.12)] {
        let a = TileAssignment::extended(&pat, t);
        let tl = build_graph(Operation::Cholesky, &a, &KernelCostModel::uniform(nb, 30.0));
        let mut a0 = TiledMatrix::random_spd(t, nb, 5);
        a0.symmetrize_from_lower();
        let (_, report) = execute_distributed(&tl, &a, &a0).expect("protocol clean");
        assert!(report.error.is_none(), "t = {t}");
        assert_eq!(
            report.wire,
            cholesky_comm_volume(&a),
            "Cholesky t = {t}: conformance"
        );
        let measured = report.wire.trailing as f64;
        let est = cholesky_comm_estimate(&pat, t);
        let rel = (est - measured).abs() / est;
        assert!(
            rel < tol,
            "Cholesky t = {t}: measured {measured}, Eq. 2 says {est}, rel err {rel}"
        );
    }
}
