//! Cross-crate integration tests: pattern → tile assignment → task graph →
//! simulation and real execution, for every distribution scheme.

use flexdist::core::{cost, g2dbc, gcrm, sbc, twodbc, Pattern};
use flexdist::dist::{cholesky_comm_volume, lu_comm_volume, TileAssignment};
use flexdist::factor::residual::{cholesky_residual, lu_residual};
use flexdist::factor::{build_graph, execute, Operation, SimSetup};
use flexdist::kernels::{KernelCostModel, TiledMatrix};
use flexdist::runtime::MachineConfig;

fn machine(nodes: u32) -> MachineConfig {
    let mut m = MachineConfig::test_machine(nodes, 4);
    m.latency = 2e-6;
    m.bandwidth = 2e9;
    m
}

fn sim(op: Operation, t: usize, nodes: u32, pattern: &Pattern) -> flexdist::runtime::SimReport {
    SimSetup {
        operation: op,
        t,
        cost: KernelCostModel::uniform(64, 5.0),
        machine: machine(nodes),
    }
    .run(pattern)
}

#[test]
fn lu_pipeline_on_every_scheme_is_numerically_correct() {
    let (t, nb) = (6, 8);
    let a0 = TiledMatrix::random_diag_dominant(t, nb, 2024);
    for (name, pattern) in [
        ("2dbc", twodbc::two_dbc(2, 3)),
        ("g2dbc-prime", g2dbc::g2dbc(7)),
        ("g2dbc-c0", g2dbc::g2dbc(12)),
        ("flat", twodbc::two_dbc(5, 1)),
    ] {
        let assignment = TileAssignment::cyclic(&pattern, t);
        let tl = build_graph(
            Operation::Lu,
            &assignment,
            &KernelCostModel::uniform(nb, 10.0),
        );
        let (factored, rep) = execute(&tl, a0.clone(), 4);
        assert!(rep.error.is_none(), "{name}: {:?}", rep.error);
        let res = lu_residual(&a0, &factored);
        assert!(res < 1e-11, "{name}: residual {res}");
    }
}

#[test]
fn cholesky_pipeline_on_every_symmetric_scheme() {
    let (t, nb) = (8, 6);
    let a0 = TiledMatrix::random_spd(t, nb, 77);
    let gcrm_pat = gcrm::run_once(11, 11, 4, gcrm::LoadMetric::Colrows).unwrap();
    for (name, pattern) in [
        ("2dbc-square", twodbc::two_dbc(3, 3)),
        ("sbc-triangular", sbc::sbc_extended(21).unwrap()),
        ("sbc-halfsquare", sbc::sbc_extended(8).unwrap()),
        ("sbc-basic", sbc::sbc_basic(10).unwrap()),
        ("gcrm", gcrm_pat),
    ] {
        let assignment = TileAssignment::extended(&pattern, t);
        let tl = build_graph(
            Operation::Cholesky,
            &assignment,
            &KernelCostModel::uniform(nb, 10.0),
        );
        let (factored, rep) = execute(&tl, a0.clone(), 4);
        assert!(rep.error.is_none(), "{name}: {:?}", rep.error);
        let res = cholesky_residual(&a0, &factored);
        assert!(res < 1e-11, "{name}: residual {res}");
    }
}

#[test]
fn simulated_makespan_ordering_follows_cost_metric_for_lu() {
    // With communication expensive enough, the cost metric T must predict
    // the simulated ranking: G-2DBC < best 2DBC fewer nodes < flat grid.
    let t = 23;
    let flat = sim(Operation::Lu, t, 23, &twodbc::two_dbc(23, 1));
    let g = sim(Operation::Lu, t, 23, &g2dbc::g2dbc(23));
    assert!(
        g.makespan < flat.makespan,
        "G-2DBC {} !< flat {}",
        g.makespan,
        flat.makespan
    );
    // Message counts follow the exact comm volumes.
    let a_flat = TileAssignment::cyclic(&twodbc::two_dbc(23, 1), t);
    let a_g = TileAssignment::cyclic(&g2dbc::g2dbc(23), t);
    assert!(lu_comm_volume(&a_g).total() < lu_comm_volume(&a_flat).total());
}

#[test]
fn simulator_message_count_matches_exact_comm_volume_for_lu() {
    // With the replica cache on, the simulator sends each tile version to
    // each consuming node at most once — exactly what the analytical counter
    // counts (plus nothing else, for LU's dataflow).
    let t = 12;
    for pattern in [twodbc::two_dbc(2, 3), g2dbc::g2dbc(7)] {
        let assignment = TileAssignment::cyclic(&pattern, t);
        let analytic = lu_comm_volume(&assignment).total();
        let rep = SimSetup {
            operation: Operation::Lu,
            t,
            cost: KernelCostModel::uniform(32, 5.0),
            machine: machine(pattern.n_nodes()),
        }
        .run_assignment(&assignment);
        assert_eq!(
            rep.messages, analytic,
            "simulated messages vs analytical volume"
        );
    }
}

#[test]
fn simulator_message_count_matches_exact_comm_volume_for_gemm() {
    // GEMM inputs are read-only, so the replica cache sends each input
    // tile at most once per consuming node — exactly the analytic count.
    let t = 10;
    let pattern = twodbc::two_dbc(2, 3);
    let assignment = TileAssignment::cyclic(&pattern, t);
    let analytic = flexdist::dist::gemm_comm_volume(&assignment).total();
    let rep = SimSetup {
        operation: Operation::Gemm,
        t,
        cost: KernelCostModel::uniform(32, 5.0),
        machine: machine(6),
    }
    .run_assignment(&assignment);
    assert_eq!(rep.messages, analytic);
}

#[test]
fn simulator_message_count_matches_exact_comm_volume_for_cholesky() {
    let t = 14;
    let pattern = sbc::sbc_extended(10).unwrap();
    let assignment = TileAssignment::extended(&pattern, t);
    let analytic = cholesky_comm_volume(&assignment).total();
    let rep = SimSetup {
        operation: Operation::Cholesky,
        t,
        cost: KernelCostModel::uniform(32, 5.0),
        machine: machine(10),
    }
    .run_assignment(&assignment);
    assert_eq!(rep.messages, analytic);
}

#[test]
fn strong_scaling_makespan_decreases() {
    // LU at fixed size: 4 -> 16 nodes must speed things up.
    let t = 32;
    let r4 = sim(Operation::Lu, t, 4, &twodbc::two_dbc(2, 2));
    let r16 = sim(Operation::Lu, t, 16, &twodbc::two_dbc(4, 4));
    assert!(
        r16.makespan < r4.makespan,
        "16 nodes {} !< 4 nodes {}",
        r16.makespan,
        r4.makespan
    );
}

#[test]
fn gcrm_beats_or_matches_sbc_in_simulation() {
    // Paper Fig. 11: GCR&M on all P nodes reaches higher total throughput
    // than SBC restricted to fewer nodes. The effect needs enough work per
    // node (the paper observes it from mid-size matrices upward), hence the
    // larger tile count here.
    let t = 60;
    let p = 31u32;
    let sbc_p = sbc::largest_admissible_at_most(p).unwrap(); // 28
    let sbc_pat = sbc::sbc_extended(sbc_p).unwrap();
    let gcrm_pat = gcrm::search(
        p,
        &gcrm::GcrmConfig {
            n_seeds: 10,
            ..Default::default()
        },
    )
    .unwrap()
    .best;
    let r_sbc = sim(Operation::Cholesky, t, p, &sbc_pat);
    let r_gcrm = sim(Operation::Cholesky, t, p, &gcrm_pat);
    assert!(
        r_gcrm.makespan < r_sbc.makespan * 1.15,
        "GCR&M {} vs SBC {}",
        r_gcrm.makespan,
        r_sbc.makespan
    );
}

#[test]
fn cost_metric_consistency_across_crates() {
    // The symmetric cost computed on the pattern equals (z̄) what the tile
    // assignment realizes at scale, for square patterns.
    for pattern in [sbc::sbc_extended(21).unwrap(), twodbc::two_dbc(3, 3)] {
        let sym = cost::symmetric_cost(&pattern, usize::MAX);
        let t = pattern.rows() * 12;
        let assignment = TileAssignment::extended(&pattern, t);
        let exact = cholesky_comm_volume(&assignment).trailing as f64;
        let estimate = (t * (t + 1) / 2) as f64 * (sym - 1.0);
        let rel = (exact - estimate).abs() / estimate;
        assert!(rel < 0.15, "rel err {rel}");
    }
}
