//! # flexdist
//!
//! A Rust reproduction of *Data Distribution Schemes for Dense Linear
//! Algebra Factorizations on Any Number of Nodes* (Beaumont, Collin,
//! Eyraud-Dubois, Vérité — IPDPS 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — distribution patterns (2DBC, G-2DBC, SBC, GCR&M) and the
//!   communication-cost metric;
//! * [`matching`] — bipartite matching substrate;
//! * [`dist`] — pattern replication over tiled matrices, extended diagonal
//!   assignment, exact communication-volume analysis;
//! * [`kernels`] — dense tile kernels (GEMM, TRSM, POTRF, GETRF, SYRK) and
//!   their flop cost model;
//! * [`runtime`] — a StarPU-like sequential-task-flow runtime with a
//!   discrete-event cluster simulator;
//! * [`factor`] — tiled LU / Cholesky / SYRK / GEMM drivers: simulated,
//!   really executed on a thread pool, and distributed over message-passing
//!   ranks;
//! * [`net`] — the in-process message-passing fabric under the distributed
//!   executor (tile codec, counted links, replica cache);
//! * [`hetero`] — heterogeneous-node distributions via column-based
//!   rectangle partitioning (the paper's §VI research avenue).
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! reproduction map.

pub use flexdist_core as core;
pub use flexdist_dist as dist;
pub use flexdist_factor as factor;
pub use flexdist_hetero as hetero;
pub use flexdist_kernels as kernels;
pub use flexdist_matching as matching;
pub use flexdist_net as net;
pub use flexdist_runtime as runtime;

/// Library version (workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exported() {
        assert!(!super::VERSION.is_empty());
    }
}
