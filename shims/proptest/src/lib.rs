//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the subset of proptest's API its test suites use:
//!
//! * `Strategy` with `prop_map`, `prop_flat_map` and `boxed`;
//! * range strategies (`0u32..100`, `1usize..=8`, ...), tuples of
//!   strategies, `Just`, `prop_oneof!` and `collection::vec`;
//! * the `proptest!` macro with per-block `#![proptest_config(...)]`,
//!   and `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   seed that reproduces it instead of a minimized input.
//! * **Deterministic seeding.** Seeds derive from the test's name, so
//!   a suite run is reproducible without a `proptest-regressions`
//!   directory (which would be useless in CI images anyway).

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Source of randomness handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    #[inline]
    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// Outcome of one generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; generate a fresh case.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values: the heart of the shim.
///
/// Unlike real proptest there is no value tree; `generate` draws a
/// value directly from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy (the `prop_oneof!` building block).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `base.prop_map(f)`.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// `base.prop_flat_map(f)`.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "collection::vec: empty size range");
            Self {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_exclusive - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's name.
#[must_use]
pub fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Driver behind the `proptest!` macro. Runs `config.cases` accepted
/// cases; panics on the first failure with a reproducing seed.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = u64::from(config.cases) * 64 + 1024;
    while accepted < config.cases {
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        attempt += 1;
        assert!(
            attempt <= max_attempts,
            "proptest '{name}': too many rejected cases ({accepted}/{} accepted after {max_attempts} attempts)",
            config.cases
        );
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {accepted} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                let ($($arg,)+) = ($($crate::Strategy::generate(&($strategy), __rng),)+);
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among heterogeneous strategies with a common value
/// type. Each alternative is boxed, so `prop_oneof![range, mapped,
/// Just(x)]` compiles as long as all branches yield the same value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn map_flat_map_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (1u32..5).prop_flat_map(|n| (Just(n), 0u32..n.max(1)));
        for _ in 0..200 {
            let (n, k) = Strategy::generate(&s, &mut rng);
            assert!(k < n);
        }
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(Strategy::generate(&doubled, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn oneof_hits_every_branch() {
        let mut rng = TestRng::from_seed(3);
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn collection_vec_respects_sizes() {
        let mut rng = TestRng::from_seed(4);
        let s = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_single_arg(x in 0u32..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_tuple_pattern((a, b) in (0u32..10, 10u32..20), c in 0usize..3) {
            prop_assert!(a < 10, "a = {}", a);
            prop_assert!(b >= 10);
            prop_assert!(c < 3);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_assume_rejects(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_seed() {
        crate::run_proptest(
            &ProptestConfig::with_cases(8),
            "failing_case_panics_with_seed",
            |rng| {
                let v = Strategy::generate(&(0u32..100), rng);
                prop_assert!(v > 1000, "forced: v = {}", v);
                Ok(())
            },
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let one = |seed: u64| {
            let mut rng = TestRng::from_seed(seed);
            (0..10)
                .map(|_| Strategy::generate(&(0u64..1_000_000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(one(99), one(99));
    }
}
