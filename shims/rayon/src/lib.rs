//! Minimal, order-preserving stand-in for the `rayon` crate.
//!
//! The build environment cannot reach a crates.io mirror, so the
//! workspace vendors the slice of rayon's API it uses: `par_iter()` on
//! slices/`Vec`s followed by `map`/`filter_map` and an ordered
//! `collect`. Work is split into contiguous chunks, one per available
//! core, and executed on `std::thread::scope` threads; chunk results
//! are concatenated in order, so `collect` observes exactly the same
//! sequence rayon's indexed parallel iterators guarantee.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

std::thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Run `f` with the shim's worker count pinned to `threads` (rayon's
/// `ThreadPoolBuilder::num_threads` equivalent, scoped to the calling
/// thread). Used by determinism tests to compare identical sweeps at
/// different parallelism levels.
pub fn with_thread_count<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(previous);
    f()
}

fn worker_count(items: usize) -> usize {
    let cores = THREAD_OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    cores.min(items).max(1)
}

/// Run `f` over each chunk of `items` on its own scoped thread and
/// concatenate the per-chunk outputs in order.
fn run_chunked<'data, T, R, F>(items: &'data [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> Option<R> + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().filter_map(&f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().filter_map(&f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("rayon shim worker panicked"));
        }
        out
    })
}

/// Entry point mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn filter_map<R, F>(self, f: F) -> ParFilterMap<'data, T, F>
    where
        F: Fn(&'data T) -> Option<R> + Sync,
        R: Send,
    {
        ParFilterMap {
            items: self.items,
            f,
        }
    }
}

/// Result of `par_iter().map(f)`.
pub struct ParMap<'data, T: Sync, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> ParMap<'data, T, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = self.f;
        run_chunked(self.items, |item| Some(f(item)))
            .into_iter()
            .collect()
    }
}

/// Result of `par_iter().filter_map(f)`.
pub struct ParFilterMap<'data, T: Sync, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> Option<R> + Sync> ParFilterMap<'data, T, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunked(self.items, self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_preserves_order_and_filters() {
        let xs: Vec<u64> = (0..10_000).collect();
        let evens: Vec<u64> = xs
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(
            evens,
            (0..10_000).filter(|x| x % 2 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_override_pins_worker_count_and_restores() {
        crate::with_thread_count(1, || {
            assert_eq!(crate::worker_count(100), 1);
            crate::with_thread_count(3, || assert_eq!(crate::worker_count(100), 3));
            assert_eq!(crate::worker_count(100), 1);
            let xs: Vec<u64> = (0..100).collect();
            let out: Vec<u64> = xs.par_iter().map(|&x| x + 1).collect();
            assert_eq!(out.len(), 100);
        });
        assert!(crate::worker_count(100) >= 1);
    }

    #[test]
    fn borrows_from_captured_environment() {
        let offset = 100u64;
        let xs: Vec<u64> = (0..50).collect();
        let out: Vec<u64> = xs.par_iter().map(|&x| x + offset).collect();
        assert_eq!(out[49], 149);
    }
}
