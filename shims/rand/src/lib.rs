//! Minimal, fully deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the tiny slice of the `rand 0.8` API it actually
//! uses: seedable generators (`StdRng`, `SmallRng`), `gen_range` over
//! integer and float ranges, and `gen_bool`. Call sites compile
//! unchanged against this shim.
//!
//! The engine is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit
//! state, full-period, statistically solid for test-data generation,
//! and — most importantly here — identical output on every platform,
//! which keeps seeded matrices and GCR&M searches reproducible.

use std::ops::{Range, RangeInclusive};

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Low-level generator interface: a source of uniform `u64` words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 explicit mantissa bits; same construction as rand's
        // `Standard` distribution for f64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample itself, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    macro_rules! define_rng {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone)]
            pub struct $name {
                state: u64,
            }

            impl SeedableRng for $name {
                #[inline]
                fn seed_from_u64(seed: u64) -> Self {
                    // Scramble the seed once so that nearby seeds
                    // (0, 1, 2, ...) start in distant states.
                    let mut s = seed;
                    let state = splitmix64(&mut s);
                    Self { state }
                }
            }

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    splitmix64(&mut self.state)
                }
            }
        };
    }

    define_rng!(
        /// Deterministic general-purpose generator (stands in for rand's `StdRng`).
        StdRng
    );
    define_rng!(
        /// Deterministic small generator (stands in for rand's `SmallRng`).
        SmallRng
    );
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..20);
            assert!(x < 20);
            let y: u32 = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
            let z: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.001..0.01);
            assert!((0.001..0.01).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!((300..=700).contains(&hits), "hits = {hits}");
    }
}
