//! Minimal, self-contained stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of criterion's API its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: a short warm-up, then
//! `sample_size` timed samples of an adaptively chosen batch size, and
//! a report of min / median / mean per-iteration wall time (plus
//! elements/s when a throughput is set). No statistics machinery, no
//! HTML reports — enough to compare hot paths before and after a
//! change on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim times each batch
/// routine individually regardless, so the variants only exist for
/// call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation: lets the report print elements/second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Collected timing samples for one benchmark run.
struct Samples {
    /// Mean per-iteration time of each sample.
    per_iter: Vec<f64>,
}

impl Samples {
    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let mut sorted = self.per_iter.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted.first().copied().unwrap_or(0.0);
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let mut line = format!(
            "bench {name:<40} min {} | median {} | mean {}",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean)
        );
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if median > 0.0 {
                line.push_str(&format!(" | {:.3e} {unit}", count as f64 / median));
            }
        }
        println!("{line}");
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Runs closures handed to `Bencher::iter*` and records samples.
pub struct Bencher {
    sample_count: usize,
    samples: Samples,
}

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            sample_count,
            samples: Samples {
                per_iter: Vec::new(),
            },
        }
    }

    /// Time `routine` repeatedly. Batch size adapts so one sample
    /// takes roughly `TARGET_SAMPLE_TIME`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: run once, scale the batch so a
        // sample lands near the target duration.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let batch = ((TARGET_SAMPLE_TIME.as_secs_f64() / once) as usize).clamp(1, 1_000_000);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.per_iter.push(elapsed / batch as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.per_iter.push(start.elapsed().as_secs_f64());
        }
    }
}

/// A named set of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.samples.report(&full, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.samples.report(&full, self.throughput);
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    #[must_use]
    pub fn new() -> Self {
        Self {
            default_sample_size: 10,
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(10);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_sample_size.max(10));
        f(&mut b);
        b.samples.report(name, None);
        self
    }
}

/// Bundle benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group!(smoke, quick_bench);

    #[test]
    fn harness_runs_to_completion() {
        smoke();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("p_r", "36_8").to_string(), "p_r/36_8");
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
    }
}
